"""A tiny structural/behavioural HDL front-end.

Designs can be described either programmatically (building
:class:`~repro.rtl.netlist.Module` objects directly) or in a small text
language close to a Verilog subset::

    module M1(input n1, input n2, input wait, output g1, output g2);
      assign g1 = n1 & !wait;
      assign g2 = n2 & !wait;
    endmodule

    module L1(input g1, input g2, input hit, output d1, output d2, output wait);
      reg q1 init 0;
      reg q2 init 0;
      q1 <= g1 | (q1 & !hit);
      q2 <= g2 | (q2 & !hit);
      assign d1 = q1 & hit;
      assign d2 = q2 & hit;
      assign wait = q1 | q2 | g1 | g2;
    endmodule

Grammar summary
---------------
* ``module NAME ( port, ... );`` … ``endmodule`` — ports are
  ``input NAME`` / ``output NAME``.
* ``assign NAME = EXPR;`` — combinational assignment.
* ``reg NAME init (0|1);`` — register declaration with reset value.
* ``NAME <= EXPR;`` — register next-state function (``NAME`` must be a reg).
* Expressions use ``! & | ^``, parentheses, and the constants ``0``/``1``;
  ``~``, ``&&`` and ``||`` are accepted as aliases.
* ``//`` comments run to end of line; ``/* ... */`` block comments allowed.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..logic.boolexpr import BoolExpr, and_, const, not_, or_, var, xor
from .netlist import Module

__all__ = ["parse_hdl", "parse_module", "parse_expr", "HDLError", "module_to_hdl"]


class HDLError(ValueError):
    """Raised when the HDL text cannot be parsed."""


_COMMENT_LINE = re.compile(r"//[^\n]*")
_COMMENT_BLOCK = re.compile(r"/\*.*?\*/", re.DOTALL)
_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_\.]*\Z")


def _check_identifier(name: str, context: str, module_name: str) -> str:
    if not _IDENTIFIER.match(name):
        raise HDLError(f"invalid signal name {name!r} in {context} of module {module_name!r}")
    return name


def _strip_comments(text: str) -> str:
    text = _COMMENT_BLOCK.sub(" ", text)
    text = _COMMENT_LINE.sub(" ", text)
    return text


# ---------------------------------------------------------------------------
# Expression parser (recursive descent over a token list).
# ---------------------------------------------------------------------------

_EXPR_TOKEN = re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z0-9_\.]*)|(?P<const>[01])|(?P<op>\(|\)|!|~|\^|&&|\|\||&|\|))"
)


def _tokenize_expr(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _EXPR_TOKEN.match(text, position)
        if match is None:
            raise HDLError(f"cannot tokenize expression at: {text[position:]!r}")
        token = match.group("ident") or match.group("const") or match.group("op")
        tokens.append(token)
        position = match.end()
    return tokens


class _ExprParser:
    def __init__(self, tokens: List[str], source: str):
        self.tokens = tokens
        self.source = source
        self.index = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def advance(self) -> str:
        token = self.peek()
        if token is None:
            raise HDLError(f"unexpected end of expression in {self.source!r}")
        self.index += 1
        return token

    def parse(self) -> BoolExpr:
        expr = self.parse_or()
        if self.peek() is not None:
            raise HDLError(f"trailing tokens {self.tokens[self.index:]} in {self.source!r}")
        return expr

    def parse_or(self) -> BoolExpr:
        left = self.parse_xor()
        while self.peek() in ("|", "||"):
            self.advance()
            left = or_(left, self.parse_xor())
        return left

    def parse_xor(self) -> BoolExpr:
        left = self.parse_and()
        while self.peek() == "^":
            self.advance()
            left = xor(left, self.parse_and())
        return left

    def parse_and(self) -> BoolExpr:
        left = self.parse_unary()
        while self.peek() in ("&", "&&"):
            self.advance()
            left = and_(left, self.parse_unary())
        return left

    def parse_unary(self) -> BoolExpr:
        token = self.peek()
        if token in ("!", "~"):
            self.advance()
            return not_(self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> BoolExpr:
        token = self.advance()
        if token == "(":
            inner = self.parse_or()
            closing = self.advance()
            if closing != ")":
                raise HDLError(f"expected ')' in {self.source!r}")
            return inner
        if token in ("0", "1"):
            return const(token == "1")
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_\.]*", token):
            return var(token)
        raise HDLError(f"unexpected token {token!r} in {self.source!r}")


def parse_expr(text: str) -> BoolExpr:
    """Parse a boolean expression in HDL syntax."""
    return _ExprParser(_tokenize_expr(text), text).parse()


# ---------------------------------------------------------------------------
# Module parser.
# ---------------------------------------------------------------------------

_MODULE_HEADER = re.compile(
    r"module\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\((?P<ports>[^)]*)\)\s*;", re.DOTALL
)


def parse_hdl(text: str) -> Dict[str, Module]:
    """Parse a source file that may contain several modules."""
    text = _strip_comments(text)
    modules: Dict[str, Module] = {}
    position = 0
    while True:
        match = _MODULE_HEADER.search(text, position)
        if match is None:
            break
        end = text.find("endmodule", match.end())
        if end < 0:
            raise HDLError(f"module {match.group('name')!r} is missing 'endmodule'")
        body = text[match.end():end]
        module = _build_module(match.group("name"), match.group("ports"), body)
        if module.name in modules:
            raise HDLError(f"duplicate module name {module.name!r}")
        modules[module.name] = module
        position = end + len("endmodule")
    if not modules:
        raise HDLError("no module found in HDL source")
    return modules


def parse_module(text: str) -> Module:
    """Parse a source containing exactly one module."""
    modules = parse_hdl(text)
    if len(modules) != 1:
        raise HDLError(f"expected exactly one module, found {sorted(modules)}")
    return next(iter(modules.values()))


def _build_module(name: str, ports_text: str, body: str) -> Module:
    module = Module(name)
    for port in ports_text.split(","):
        port = port.strip()
        if not port:
            continue
        parts = port.split()
        if len(parts) != 2 or parts[0] not in ("input", "output"):
            raise HDLError(f"malformed port declaration {port!r} in module {name!r}")
        direction, signal = parts
        if direction == "input":
            module.add_input(signal)
        else:
            module.add_output(signal)

    register_inits: Dict[str, bool] = {}
    register_next: Dict[str, BoolExpr] = {}

    for raw_statement in body.split(";"):
        statement = raw_statement.strip()
        if not statement:
            continue
        if statement.startswith("assign"):
            rest = statement[len("assign"):].strip()
            if "=" not in rest:
                raise HDLError(f"malformed assign {statement!r} in module {name!r}")
            target, expr_text = rest.split("=", 1)
            module.add_assign(
                _check_identifier(target.strip(), "assign", name), parse_expr(expr_text)
            )
        elif statement.startswith("reg"):
            rest = statement[len("reg"):].strip()
            parts = rest.split()
            if not parts:
                raise HDLError(f"malformed reg declaration {statement!r} in module {name!r}")
            reg_name = parts[0]
            init = False
            if len(parts) >= 3 and parts[1] == "init":
                if parts[2] not in ("0", "1"):
                    raise HDLError(f"register init must be 0 or 1 in {statement!r}")
                init = parts[2] == "1"
            elif len(parts) != 1:
                raise HDLError(f"malformed reg declaration {statement!r} in module {name!r}")
            register_inits[reg_name] = init
        elif "<=" in statement:
            target, expr_text = statement.split("<=", 1)
            register_next[_check_identifier(target.strip(), "register assignment", name)] = (
                parse_expr(expr_text)
            )
        else:
            raise HDLError(f"unrecognised statement {statement!r} in module {name!r}")

    for reg_name, init in register_inits.items():
        if reg_name not in register_next:
            raise HDLError(f"register {reg_name!r} in module {name!r} has no next-state assignment")
        module.add_register(reg_name, register_next[reg_name], init)
    for reg_name in register_next:
        if reg_name not in register_inits:
            raise HDLError(f"signal {reg_name!r} in module {name!r} assigned with '<=' but not declared 'reg'")

    module.validate(allow_undriven=True)
    return module


def module_to_hdl(module: Module) -> str:
    """Render a module back to HDL text (round-trips through :func:`parse_module`)."""
    ports = [f"input {name}" for name in module.inputs]
    ports += [f"output {name}" for name in module.outputs]
    lines = [f"module {module.name}({', '.join(ports)});"]
    for name, register in module.registers.items():
        lines.append(f"  reg {name} init {1 if register.init else 0};")
    for name, register in module.registers.items():
        lines.append(f"  {name} <= {register.next_value.to_str()};")
    for name, expr in module.assigns.items():
        lines.append(f"  assign {name} = {expr.to_str()};")
    lines.append("endmodule")
    return "\n".join(lines)
