"""RTL substrate: netlists, HDL front-end, simulation, FSM extraction, Kripke structures."""

from .netlist import Module, Register, NetlistError
from .hdl import parse_hdl, parse_module, parse_expr, module_to_hdl, HDLError
from .elaborate import compose, rename_signals, hide_signals
from .simulator import Stimulus, SimulationTrace, Simulator, simulate
from .waveform import render_waveform, render_table, render_vcd
from .fsm import FSM, FSMState, FSMTransition, extract_fsm
from .kripke import KripkeStructure, kripke_from_module

__all__ = [
    "Module",
    "Register",
    "NetlistError",
    "parse_hdl",
    "parse_module",
    "parse_expr",
    "module_to_hdl",
    "HDLError",
    "compose",
    "rename_signals",
    "hide_signals",
    "Stimulus",
    "SimulationTrace",
    "Simulator",
    "simulate",
    "render_waveform",
    "render_table",
    "render_vcd",
    "FSM",
    "FSMState",
    "FSMTransition",
    "extract_fsm",
    "KripkeStructure",
    "kripke_from_module",
]
