"""Kripke structures for concrete modules.

The primary coverage question of the paper (Theorem 1) asks whether the
temporal property ``!A & R`` is false *in the model consisting of the concrete
modules* — i.e. a model-checking run on a Kripke structure whose behaviours
are exactly the runs consistent with the concrete RTL, with every signal the
RTL does not drive left free (the environment, including the signals of the
sub-modules that were specified by properties rather than RTL).

:func:`kripke_from_module` builds that structure explicitly:

* a state is a pair (register valuation, free-signal valuation); its label is
  the *full* signal valuation obtained by evaluating the combinational logic,
* there is a transition to every state whose register valuation is the one
  computed by the netlist and whose free signals take arbitrary values,
* initial states are all states whose registers carry their reset values.

Signals mentioned by the architectural or RTL properties but absent from the
concrete modules (e.g. ``r1``/``r2`` in the paper's Example 1, which only the
priority arbiter's properties mention) are added as ``extra_free`` signals so
the property automata can constrain them in the product.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..logic.boolexpr import all_assignments
from .netlist import Module

__all__ = ["KripkeStructure", "kripke_from_module"]


@dataclass
class KripkeStructure:
    """Explicit Kripke structure with full signal valuations as labels."""

    name: str
    atoms: Tuple[str, ...]
    labels: List[Dict[str, bool]] = field(default_factory=list)
    initial: Set[int] = field(default_factory=set)
    transitions: Dict[int, Set[int]] = field(default_factory=dict)
    annotations: List[Tuple[Tuple[Tuple[str, bool], ...], Tuple[Tuple[str, bool], ...]]] = field(
        default_factory=list
    )

    # -- construction ---------------------------------------------------------
    def add_state(
        self,
        label: Mapping[str, bool],
        *,
        initial: bool = False,
        annotation: Tuple[Tuple[Tuple[str, bool], ...], Tuple[Tuple[str, bool], ...]] = ((), ()),
    ) -> int:
        index = len(self.labels)
        self.labels.append({name: bool(value) for name, value in label.items()})
        self.annotations.append(annotation)
        self.transitions.setdefault(index, set())
        if initial:
            self.initial.add(index)
        return index

    def add_transition(self, source: int, target: int) -> None:
        self.transitions.setdefault(source, set()).add(target)
        self.transitions.setdefault(target, set())

    # -- queries -----------------------------------------------------------------
    def state_count(self) -> int:
        return len(self.labels)

    def transition_count(self) -> int:
        return sum(len(targets) for targets in self.transitions.values())

    def label(self, state: int) -> Dict[str, bool]:
        return self.labels[state]

    def successors(self, state: int) -> FrozenSet[int]:
        return frozenset(self.transitions.get(state, set()))

    def value(self, state: int, name: str) -> bool:
        return bool(self.labels[state].get(name, False))

    def reachable_states(self) -> Set[int]:
        seen: Set[int] = set()
        stack = list(self.initial)
        while stack:
            state = stack.pop()
            if state in seen:
                continue
            seen.add(state)
            stack.extend(self.transitions.get(state, set()))
        return seen

    def summary(self) -> str:
        return (
            f"Kripke({self.name}): {self.state_count()} states, "
            f"{self.transition_count()} transitions, {len(self.atoms)} atoms"
        )


def kripke_from_module(
    module: Module,
    extra_free: Sequence[str] = (),
    *,
    observed: Optional[Sequence[str]] = None,
) -> KripkeStructure:
    """Build the Kripke structure of a concrete module composition.

    Parameters
    ----------
    module:
        The (composed) concrete modules, e.g. ``compose([m1, l1])``.
    extra_free:
        Signals that appear in properties but are not part of the module; they
        become unconstrained environment signals of the structure.
    observed:
        Restrict state labels to these signals (default: every module signal
        plus the extra free signals).  Labels always retain enough signals for
        the property automata, so pass the union of ``APA`` and ``APR`` plus
        anything you want in counterexample waveforms.
    """
    module.validate(allow_undriven=True)

    free_names: List[str] = module.environment_signals()
    for name in extra_free:
        if name not in free_names and name not in module.assigns and name not in module.registers:
            free_names.append(name)

    register_names = list(module.state_signals())
    all_signals = sorted(set(module.signals()) | set(free_names))
    label_names = list(observed) if observed is not None else all_signals

    structure = KripkeStructure(name=module.name, atoms=tuple(label_names))

    state_index: Dict[Tuple[Tuple[bool, ...], Tuple[bool, ...]], int] = {}
    free_assignments = [
        tuple(assignment[name] for name in free_names) for assignment in all_assignments(free_names)
    ]

    def register_key(registers: Mapping[str, bool]) -> Tuple[bool, ...]:
        return tuple(bool(registers[name]) for name in register_names)

    def get_state(registers: Mapping[str, bool], free_values: Tuple[bool, ...], initial: bool) -> int:
        key = (register_key(registers), free_values)
        if key in state_index:
            if initial:
                structure.initial.add(state_index[key])
            return state_index[key]
        inputs = dict(zip(free_names, free_values))
        valuation = module.evaluate_combinational(registers, inputs)
        # Extra free signals that the module does not know about.
        for name, value in inputs.items():
            valuation.setdefault(name, value)
        label = {name: bool(valuation.get(name, False)) for name in label_names}
        annotation = (
            tuple(sorted((name, bool(registers[name])) for name in register_names)),
            tuple(zip(free_names, free_values)),
        )
        index = structure.add_state(label, initial=initial, annotation=annotation)
        state_index[key] = index
        return index

    initial_registers = module.initial_state()
    worklist: List[Tuple[Dict[str, bool], Tuple[bool, ...]]] = []
    for free_values in free_assignments:
        index = get_state(initial_registers, free_values, initial=True)
        worklist.append((dict(initial_registers), free_values))

    # Cooperative cancellation: when this enumeration runs as a member of a
    # racing portfolio, a faster engine's verdict stops it mid-build.
    from ..engines.cancel import check_cancelled

    processed: Set[int] = set()
    while worklist:
        check_cancelled()
        registers, free_values = worklist.pop()
        source = get_state(registers, free_values, initial=False)
        if source in processed:
            continue
        processed.add(source)
        inputs = dict(zip(free_names, free_values))
        valuation, next_registers = module.step(registers, inputs)
        for next_free in free_assignments:
            target = get_state(next_registers, next_free, initial=False)
            structure.add_transition(source, target)
            if target not in processed:
                worklist.append((dict(next_registers), next_free))
    return structure
