"""Synthesisable RTL netlist model.

A :class:`Module` is a synchronous netlist over boolean signals:

* **inputs** — signals driven by the environment,
* **combinational assignments** — ``signal = BoolExpr`` over other signals,
* **registers (latches)** — ``signal <= BoolExpr`` evaluated on the clock
  edge, with an initial value,
* **outputs** — the subset of signals exported at the module interface.

This is the "concrete module" object of the paper: the glue logic ``M1`` and
the cache access logic ``L1`` of the Memory Arbitration Logic, the AMBA
arbiter, etc. are all instances.  Downstream consumers are the cycle
simulator (:mod:`repro.rtl.simulator`), the FSM extractor
(:mod:`repro.rtl.fsm`), the Kripke-structure builder
(:mod:`repro.rtl.kripke`) and the ``T_M`` characteristic-formula construction
(:mod:`repro.core.tm`).

Validation performed at :meth:`Module.validate` / :meth:`Module.freeze`:
single driver per signal, no undeclared signals, and no combinational cycles
(a topological order of the combinational assignments is computed and cached).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from ..logic.boolexpr import BoolExpr

__all__ = ["Module", "Register", "NetlistError"]


class NetlistError(ValueError):
    """Raised for malformed netlists (multiple drivers, cycles, missing nets)."""


@dataclass(frozen=True)
class Register:
    """A D-type register: ``name`` takes ``next_value`` at each clock edge."""

    name: str
    next_value: BoolExpr
    init: bool = False


@dataclass
class Module:
    """A flat synchronous netlist (see module docstring)."""

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    assigns: Dict[str, BoolExpr] = field(default_factory=dict)
    registers: Dict[str, Register] = field(default_factory=dict)
    _eval_order: Optional[List[str]] = field(default=None, repr=False, compare=False)
    _dep_graph: Optional[Dict[str, FrozenSet[str]]] = field(
        default=None, repr=False, compare=False
    )

    # -- construction --------------------------------------------------------
    def add_input(self, name: str) -> "Module":
        if name in self.inputs:
            return self
        self._check_not_driven(name)
        self.inputs.append(name)
        self._eval_order = None
        self._dep_graph = None
        return self

    def add_output(self, name: str) -> "Module":
        if name not in self.outputs:
            self.outputs.append(name)
        return self

    def add_assign(self, name: str, expr: BoolExpr) -> "Module":
        """Add a combinational assignment ``name = expr``."""
        self._check_not_driven(name)
        self.assigns[name] = expr
        self._eval_order = None
        self._dep_graph = None
        return self

    def add_register(self, name: str, next_value: BoolExpr, init: bool = False) -> "Module":
        """Add a register ``name <= next_value`` with the given reset value."""
        self._check_not_driven(name)
        self.registers[name] = Register(name, next_value, init)
        self._eval_order = None
        self._dep_graph = None
        return self

    def _check_not_driven(self, name: str) -> None:
        if name in self.assigns:
            raise NetlistError(f"signal {name!r} already driven by an assign in {self.name}")
        if name in self.registers:
            raise NetlistError(f"signal {name!r} already driven by a register in {self.name}")
        if name in self.inputs:
            raise NetlistError(f"signal {name!r} is an input of {self.name} and cannot be driven")

    # -- signal sets -----------------------------------------------------------
    def signals(self) -> FrozenSet[str]:
        """All signals known to the module (inputs, register outputs, nets)."""
        names: Set[str] = set(self.inputs) | set(self.outputs)
        names |= set(self.assigns.keys()) | set(self.registers.keys())
        for expr in self.assigns.values():
            names |= set(expr.variables())
        for register in self.registers.values():
            names |= set(register.next_value.variables())
        return frozenset(names)

    def state_signals(self) -> Tuple[str, ...]:
        """Register output names in declaration order."""
        return tuple(self.registers.keys())

    def combinational_signals(self) -> Tuple[str, ...]:
        return tuple(self.assigns.keys())

    def interface_signals(self) -> Tuple[str, ...]:
        """Inputs followed by outputs: the signals visible at the boundary."""
        return tuple(self.inputs) + tuple(self.outputs)

    def is_combinational(self) -> bool:
        """True when the module has no registers (pure glue logic)."""
        return not self.registers

    def initial_state(self) -> Dict[str, bool]:
        """Initial valuation of the registers."""
        return {name: register.init for name, register in self.registers.items()}

    # -- validation --------------------------------------------------------------
    def undriven_signals(self) -> FrozenSet[str]:
        """Signals referenced but neither inputs nor driven (implicit inputs)."""
        driven = set(self.inputs) | set(self.assigns) | set(self.registers)
        return frozenset(name for name in self.signals() if name not in driven)

    def environment_signals(self) -> List[str]:
        """The signals the environment chooses each cycle, in canonical order.

        Declared inputs first (in declaration order, skipping any that are
        also driven), then the referenced-but-undriven signals sorted by name.
        This is the single definition of "free signal" shared by the cycle
        simulator, the Kripke builder and the symbolic engine — the three must
        agree or witness replay would diverge from the state encoding.
        """
        driven = set(self.assigns) | set(self.registers)
        free = [name for name in self.inputs if name not in driven]
        for name in sorted(self.undriven_signals()):
            if name not in free:
                free.append(name)
        return free

    def validate(self, allow_undriven: bool = False) -> None:
        """Check structural well-formedness; raises :class:`NetlistError`."""
        undriven = self.undriven_signals()
        if undriven and not allow_undriven:
            raise NetlistError(
                f"module {self.name!r} references undriven signals: {sorted(undriven)}"
            )
        for name in self.outputs:
            if name not in self.assigns and name not in self.registers and name not in self.inputs:
                if not allow_undriven:
                    raise NetlistError(f"output {name!r} of {self.name!r} is not driven")
        self.evaluation_order()  # raises on combinational cycles

    def evaluation_order(self) -> List[str]:
        """Topological order of combinational assignments (cached).

        The DFS is iterative (explicit frame stack), so deep combinational
        chains — thousands of nets each feeding the next — never hit Python's
        recursion limit.
        """
        if self._eval_order is not None:
            return list(self._eval_order)
        dependencies: Dict[str, List[str]] = {}
        for name, expr in self.assigns.items():
            dependencies[name] = sorted(
                dep for dep in expr.variables() if dep in self.assigns
            )
        order: List[str] = []
        visiting: Set[str] = set()
        visited: Set[str] = set()

        for root in sorted(self.assigns):
            if root in visited:
                continue
            # Each frame is (node, iterator over its unvisited dependencies).
            stack: List[Tuple[str, Iterator[str]]] = [(root, iter(dependencies[root]))]
            visiting.add(root)
            while stack:
                node, pending = stack[-1]
                advanced = False
                for dependency in pending:
                    if dependency in visited:
                        continue
                    if dependency in visiting:
                        chain = [frame[0] for frame in stack]
                        start = chain.index(dependency)
                        cycle = " -> ".join(chain[start:] + [dependency])
                        raise NetlistError(
                            f"combinational cycle in module {self.name!r}: {cycle}"
                        )
                    visiting.add(dependency)
                    stack.append((dependency, iter(dependencies[dependency])))
                    advanced = True
                    break
                if not advanced:
                    stack.pop()
                    visiting.discard(node)
                    visited.add(node)
                    order.append(node)
        self._eval_order = order
        return list(order)

    # -- dependency analysis / slicing ---------------------------------------
    def dependency_graph(self) -> Dict[str, FrozenSet[str]]:
        """Signal-level dependency graph: driven signal → signals it reads.

        Combinational assignments depend on their expression's support;
        registers depend on the support of their next-state function (a
        sequential edge — the cone of influence follows both kinds).  Cached
        like ``evaluation_order`` — slicing rebuilds a cone per spec conjunct
        and the expression supports don't change between them — and
        invalidated by the same mutators.
        """
        if self._dep_graph is not None:
            return dict(self._dep_graph)
        graph: Dict[str, FrozenSet[str]] = {}
        for name, expr in self.assigns.items():
            graph[name] = frozenset(expr.variables())
        for name, register in self.registers.items():
            graph[name] = frozenset(register.next_value.variables())
        self._dep_graph = graph
        return dict(graph)

    def cone_of_influence(self, signals: Iterable[str]) -> FrozenSet[str]:
        """Transitive fan-in of the given signals (inclusive, iterative).

        Every signal whose value can reach one of the seeds — through
        combinational logic or through register next-state functions — is in
        the cone; everything else provably cannot affect the seeds' values.
        """
        graph = self.dependency_graph()
        cone: Set[str] = set()
        stack: List[str] = list(signals)
        while stack:
            name = stack.pop()
            if name in cone:
                continue
            cone.add(name)
            for dependency in graph.get(name, ()):
                if dependency not in cone:
                    stack.append(dependency)
        return frozenset(cone)

    def slice_for(self, signals: Iterable[str], name: Optional[str] = None) -> "Module":
        """Cone-of-influence slice: the sub-netlist that can affect ``signals``.

        Drivers (assigns and registers) outside the cone are dropped; inputs
        and outputs are restricted to the cone.  The slice is a sound model
        for any query whose atoms are within ``signals``: dropped drivers are
        deterministic functions that cannot feed back into the cone, so the
        slice admits exactly the cone-projected runs of the full module.
        The returned module shares the (immutable) expressions of the
        original — slicing never copies logic.
        """
        cone = self.cone_of_influence(signals)
        sliced = Module(name or self.name)
        sliced.inputs = [signal for signal in self.inputs if signal in cone]
        sliced.outputs = [signal for signal in self.outputs if signal in cone]
        sliced.assigns = {
            signal: expr for signal, expr in self.assigns.items() if signal in cone
        }
        sliced.registers = {
            signal: register
            for signal, register in self.registers.items()
            if signal in cone
        }
        return sliced

    # -- evaluation -----------------------------------------------------------------
    def evaluate_combinational(
        self, state: Mapping[str, bool], inputs: Mapping[str, bool]
    ) -> Dict[str, bool]:
        """Evaluate all combinational nets given register values and inputs.

        Returns a full valuation of every signal of the module for one cycle.
        """
        valuation: Dict[str, bool] = {}
        valuation.update({name: bool(value) for name, value in state.items()})
        valuation.update({name: bool(value) for name, value in inputs.items()})
        for name in self.evaluation_order():
            valuation[name] = self.assigns[name].evaluate(valuation)
        return valuation

    def next_state(self, valuation: Mapping[str, bool]) -> Dict[str, bool]:
        """Compute register values for the next cycle from a full valuation."""
        return {
            name: register.next_value.evaluate(valuation)
            for name, register in self.registers.items()
        }

    def step(
        self, state: Mapping[str, bool], inputs: Mapping[str, bool]
    ) -> Tuple[Dict[str, bool], Dict[str, bool]]:
        """One clock cycle: returns ``(full valuation, next register state)``."""
        valuation = self.evaluate_combinational(state, inputs)
        return valuation, self.next_state(valuation)

    # -- reporting ---------------------------------------------------------------------
    def summary(self) -> str:
        """One-line structural summary used by the CLI and reports."""
        return (
            f"module {self.name}: {len(self.inputs)} inputs, {len(self.outputs)} outputs, "
            f"{len(self.assigns)} assigns, {len(self.registers)} registers"
        )

    def port_map(self) -> Dict[str, str]:
        """Classification of every signal (input/output/register/wire)."""
        classes: Dict[str, str] = {}
        for name in self.signals():
            if name in self.inputs:
                classes[name] = "input"
            elif name in self.registers:
                classes[name] = "register"
            elif name in self.assigns:
                classes[name] = "wire"
            else:
                classes[name] = "floating"
            if name in self.outputs:
                classes[name] = f"output ({classes[name]})"
        return classes
