"""Synthesisable RTL netlist model.

A :class:`Module` is a synchronous netlist over boolean signals:

* **inputs** — signals driven by the environment,
* **combinational assignments** — ``signal = BoolExpr`` over other signals,
* **registers (latches)** — ``signal <= BoolExpr`` evaluated on the clock
  edge, with an initial value,
* **outputs** — the subset of signals exported at the module interface.

This is the "concrete module" object of the paper: the glue logic ``M1`` and
the cache access logic ``L1`` of the Memory Arbitration Logic, the AMBA
arbiter, etc. are all instances.  Downstream consumers are the cycle
simulator (:mod:`repro.rtl.simulator`), the FSM extractor
(:mod:`repro.rtl.fsm`), the Kripke-structure builder
(:mod:`repro.rtl.kripke`) and the ``T_M`` characteristic-formula construction
(:mod:`repro.core.tm`).

Validation performed at :meth:`Module.validate` / :meth:`Module.freeze`:
single driver per signal, no undeclared signals, and no combinational cycles
(a topological order of the combinational assignments is computed and cached).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..logic.boolexpr import BoolExpr, Const, and_, const, var

__all__ = ["Module", "Register", "NetlistError"]


class NetlistError(ValueError):
    """Raised for malformed netlists (multiple drivers, cycles, missing nets)."""


@dataclass(frozen=True)
class Register:
    """A D-type register: ``name`` takes ``next_value`` at each clock edge."""

    name: str
    next_value: BoolExpr
    init: bool = False


@dataclass
class Module:
    """A flat synchronous netlist (see module docstring)."""

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    assigns: Dict[str, BoolExpr] = field(default_factory=dict)
    registers: Dict[str, Register] = field(default_factory=dict)
    _eval_order: Optional[List[str]] = field(default=None, repr=False, compare=False)

    # -- construction --------------------------------------------------------
    def add_input(self, name: str) -> "Module":
        if name in self.inputs:
            return self
        self._check_not_driven(name)
        self.inputs.append(name)
        self._eval_order = None
        return self

    def add_output(self, name: str) -> "Module":
        if name not in self.outputs:
            self.outputs.append(name)
        return self

    def add_assign(self, name: str, expr: BoolExpr) -> "Module":
        """Add a combinational assignment ``name = expr``."""
        self._check_not_driven(name)
        self.assigns[name] = expr
        self._eval_order = None
        return self

    def add_register(self, name: str, next_value: BoolExpr, init: bool = False) -> "Module":
        """Add a register ``name <= next_value`` with the given reset value."""
        self._check_not_driven(name)
        self.registers[name] = Register(name, next_value, init)
        self._eval_order = None
        return self

    def _check_not_driven(self, name: str) -> None:
        if name in self.assigns:
            raise NetlistError(f"signal {name!r} already driven by an assign in {self.name}")
        if name in self.registers:
            raise NetlistError(f"signal {name!r} already driven by a register in {self.name}")
        if name in self.inputs:
            raise NetlistError(f"signal {name!r} is an input of {self.name} and cannot be driven")

    # -- signal sets -----------------------------------------------------------
    def signals(self) -> FrozenSet[str]:
        """All signals known to the module (inputs, register outputs, nets)."""
        names: Set[str] = set(self.inputs) | set(self.outputs)
        names |= set(self.assigns.keys()) | set(self.registers.keys())
        for expr in self.assigns.values():
            names |= set(expr.variables())
        for register in self.registers.values():
            names |= set(register.next_value.variables())
        return frozenset(names)

    def state_signals(self) -> Tuple[str, ...]:
        """Register output names in declaration order."""
        return tuple(self.registers.keys())

    def combinational_signals(self) -> Tuple[str, ...]:
        return tuple(self.assigns.keys())

    def interface_signals(self) -> Tuple[str, ...]:
        """Inputs followed by outputs: the signals visible at the boundary."""
        return tuple(self.inputs) + tuple(self.outputs)

    def is_combinational(self) -> bool:
        """True when the module has no registers (pure glue logic)."""
        return not self.registers

    def initial_state(self) -> Dict[str, bool]:
        """Initial valuation of the registers."""
        return {name: register.init for name, register in self.registers.items()}

    # -- validation --------------------------------------------------------------
    def undriven_signals(self) -> FrozenSet[str]:
        """Signals referenced but neither inputs nor driven (implicit inputs)."""
        driven = set(self.inputs) | set(self.assigns) | set(self.registers)
        return frozenset(name for name in self.signals() if name not in driven)

    def environment_signals(self) -> List[str]:
        """The signals the environment chooses each cycle, in canonical order.

        Declared inputs first (in declaration order, skipping any that are
        also driven), then the referenced-but-undriven signals sorted by name.
        This is the single definition of "free signal" shared by the cycle
        simulator, the Kripke builder and the symbolic engine — the three must
        agree or witness replay would diverge from the state encoding.
        """
        driven = set(self.assigns) | set(self.registers)
        free = [name for name in self.inputs if name not in driven]
        for name in sorted(self.undriven_signals()):
            if name not in free:
                free.append(name)
        return free

    def validate(self, allow_undriven: bool = False) -> None:
        """Check structural well-formedness; raises :class:`NetlistError`."""
        undriven = self.undriven_signals()
        if undriven and not allow_undriven:
            raise NetlistError(
                f"module {self.name!r} references undriven signals: {sorted(undriven)}"
            )
        for name in self.outputs:
            if name not in self.assigns and name not in self.registers and name not in self.inputs:
                if not allow_undriven:
                    raise NetlistError(f"output {name!r} of {self.name!r} is not driven")
        self.evaluation_order()  # raises on combinational cycles

    def evaluation_order(self) -> List[str]:
        """Topological order of combinational assignments (cached)."""
        if self._eval_order is not None:
            return list(self._eval_order)
        dependencies: Dict[str, Set[str]] = {}
        for name, expr in self.assigns.items():
            dependencies[name] = {
                dep for dep in expr.variables() if dep in self.assigns
            }
        order: List[str] = []
        visiting: Set[str] = set()
        visited: Set[str] = set()

        def visit(node: str, chain: List[str]) -> None:
            if node in visited:
                return
            if node in visiting:
                cycle = " -> ".join(chain + [node])
                raise NetlistError(f"combinational cycle in module {self.name!r}: {cycle}")
            visiting.add(node)
            for dependency in sorted(dependencies[node]):
                visit(dependency, chain + [node])
            visiting.discard(node)
            visited.add(node)
            order.append(node)

        for name in sorted(self.assigns):
            visit(name, [])
        self._eval_order = order
        return list(order)

    # -- evaluation -----------------------------------------------------------------
    def evaluate_combinational(
        self, state: Mapping[str, bool], inputs: Mapping[str, bool]
    ) -> Dict[str, bool]:
        """Evaluate all combinational nets given register values and inputs.

        Returns a full valuation of every signal of the module for one cycle.
        """
        valuation: Dict[str, bool] = {}
        valuation.update({name: bool(value) for name, value in state.items()})
        valuation.update({name: bool(value) for name, value in inputs.items()})
        for name in self.evaluation_order():
            valuation[name] = self.assigns[name].evaluate(valuation)
        return valuation

    def next_state(self, valuation: Mapping[str, bool]) -> Dict[str, bool]:
        """Compute register values for the next cycle from a full valuation."""
        return {
            name: register.next_value.evaluate(valuation)
            for name, register in self.registers.items()
        }

    def step(
        self, state: Mapping[str, bool], inputs: Mapping[str, bool]
    ) -> Tuple[Dict[str, bool], Dict[str, bool]]:
        """One clock cycle: returns ``(full valuation, next register state)``."""
        valuation = self.evaluate_combinational(state, inputs)
        return valuation, self.next_state(valuation)

    # -- reporting ---------------------------------------------------------------------
    def summary(self) -> str:
        """One-line structural summary used by the CLI and reports."""
        return (
            f"module {self.name}: {len(self.inputs)} inputs, {len(self.outputs)} outputs, "
            f"{len(self.assigns)} assigns, {len(self.registers)} registers"
        )

    def port_map(self) -> Dict[str, str]:
        """Classification of every signal (input/output/register/wire)."""
        classes: Dict[str, str] = {}
        for name in self.signals():
            if name in self.inputs:
                classes[name] = "input"
            elif name in self.registers:
                classes[name] = "register"
            elif name in self.assigns:
                classes[name] = "wire"
            else:
                classes[name] = "floating"
            if name in self.outputs:
                classes[name] = f"output ({classes[name]})"
        return classes
