"""Cycle-accurate simulation of netlists.

The simulator drives a :class:`~repro.rtl.netlist.Module` with an explicit
per-cycle input stimulus and records the full signal valuation at every cycle.
It is used to

* regenerate the paper's Figure 3 timing diagram (cache hit / cache miss
  scenarios of the Memory Arbitration Logic),
* sanity-check the hand-built design library against expected waveforms in
  the test-suite, and
* replay counterexample lassos returned by the model checker on the actual
  netlist (confirming that reported gap scenarios are real design behaviours).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from .netlist import Module

__all__ = ["Stimulus", "SimulationTrace", "Simulator", "simulate"]


@dataclass
class Stimulus:
    """Per-cycle input stimulus.

    ``values[name]`` is the list of values the input takes cycle by cycle;
    shorter lists are padded with their last value (or ``False`` when empty).
    """

    values: Dict[str, List[bool]] = field(default_factory=dict)
    length: int = 0

    def __post_init__(self) -> None:
        for samples in self.values.values():
            self.length = max(self.length, len(samples))

    @staticmethod
    def from_vectors(**vectors: Sequence[int]) -> "Stimulus":
        """Build a stimulus from keyword vectors of 0/1 values.

        >>> Stimulus.from_vectors(r1=[1, 0, 0], r2=[0, 1, 0]).at(0)["r1"]
        True
        """
        values = {name: [bool(v) for v in samples] for name, samples in vectors.items()}
        return Stimulus(values)

    def at(self, cycle: int) -> Dict[str, bool]:
        """Input valuation at the given cycle."""
        result = {}
        for name, samples in self.values.items():
            if not samples:
                result[name] = False
            elif cycle < len(samples):
                result[name] = samples[cycle]
            else:
                result[name] = samples[-1]
        return result

    def extended(self, cycles: int) -> "Stimulus":
        """A stimulus padded/truncated to exactly ``cycles`` cycles."""
        values = {}
        for name, samples in self.values.items():
            padded = list(samples[:cycles])
            pad_value = samples[-1] if samples else False
            while len(padded) < cycles:
                padded.append(pad_value)
            values[name] = padded
        return Stimulus(values, cycles)


@dataclass
class SimulationTrace:
    """The result of a simulation: one full valuation per cycle."""

    module_name: str
    cycles: List[Dict[str, bool]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cycles)

    def value(self, name: str, cycle: int) -> bool:
        return bool(self.cycles[cycle].get(name, False))

    def signal(self, name: str) -> List[bool]:
        """The waveform of one signal across all simulated cycles."""
        return [bool(state.get(name, False)) for state in self.cycles]

    def signals(self) -> List[str]:
        names: set = set()
        for state in self.cycles:
            names |= set(state.keys())
        return sorted(names)

    def as_table(self, names: Optional[Sequence[str]] = None) -> Dict[str, List[bool]]:
        if names is None:
            names = self.signals()
        return {name: self.signal(name) for name in names}

    def first_cycle_where(self, name: str, value: bool = True) -> Optional[int]:
        """Index of the first cycle where the signal takes the given value."""
        for cycle, state in enumerate(self.cycles):
            if bool(state.get(name, False)) == value:
                return cycle
        return None


class Simulator:
    """Stateful cycle simulator for a single module."""

    def __init__(self, module: Module):
        module.validate(allow_undriven=True)
        self.module = module
        self.state: Dict[str, bool] = module.initial_state()
        self.trace = SimulationTrace(module.name)

    def reset(self) -> None:
        self.state = self.module.initial_state()
        self.trace = SimulationTrace(self.module.name)

    def step(self, inputs: Mapping[str, bool]) -> Dict[str, bool]:
        """Advance one clock cycle with the given input valuation."""
        full_inputs = {name: bool(inputs.get(name, False)) for name in self._free_signals()}
        valuation, next_state = self.module.step(self.state, full_inputs)
        self.trace.cycles.append(valuation)
        self.state = next_state
        return valuation

    def run(self, stimulus: Stimulus, cycles: Optional[int] = None) -> SimulationTrace:
        """Run for ``cycles`` cycles (default: the stimulus length)."""
        total = cycles if cycles is not None else stimulus.length
        for cycle in range(total):
            self.step(stimulus.at(cycle))
        return self.trace

    def _free_signals(self) -> List[str]:
        return self.module.environment_signals()


def simulate(module: Module, stimulus: Stimulus, cycles: Optional[int] = None) -> SimulationTrace:
    """Convenience wrapper: fresh simulator, run, return the trace."""
    simulator = Simulator(module)
    return simulator.run(stimulus, cycles)
