"""Cubes and covers: conjunctions of literals and sums of such conjunctions.

A :class:`Cube` maps variable names to required boolean values (a partial
assignment).  A :class:`Cover` is a set of cubes interpreted as their
disjunction.  These are the data structures used to represent:

* FSM transition guards after input enumeration,
* minimised state labels ``L(s)`` for the ``T_M`` construction (Definition 4
  of the paper), and
* the bounded "uncovered terms" produced by Algorithm 1 before they are
  pushed into the architectural property's parse tree.

A small Quine–McCluskey style minimiser (:func:`minimize_cover`) keeps the
printed formulas legible, matching the paper's "after minimization" remark in
Example 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .boolexpr import BoolExpr, FALSE, TRUE, and_, not_, or_, var

__all__ = ["Cube", "Cover", "cover_from_expr", "minimize_cover"]


@dataclass(frozen=True)
class Cube:
    """A conjunction of literals, stored as an immutable partial assignment."""

    literals: Tuple[Tuple[str, bool], ...]

    def __init__(self, literals: Mapping[str, bool] | Iterable[Tuple[str, bool]] = ()):
        if isinstance(literals, Mapping):
            items = tuple(sorted(literals.items()))
        else:
            items = tuple(sorted(dict(literals).items()))
        object.__setattr__(self, "literals", items)

    # -- accessors ---------------------------------------------------------
    def as_dict(self) -> Dict[str, bool]:
        return dict(self.literals)

    def variables(self) -> FrozenSet[str]:
        return frozenset(name for name, _ in self.literals)

    def value(self, name: str) -> Optional[bool]:
        """The required value of ``name`` in this cube, or ``None`` if free."""
        for key, val in self.literals:
            if key == name:
                return val
        return None

    def is_true(self) -> bool:
        """True when the cube has no literals (the universal cube)."""
        return not self.literals

    def __len__(self) -> int:
        return len(self.literals)

    def __iter__(self) -> Iterator[Tuple[str, bool]]:
        return iter(self.literals)

    # -- algebra -----------------------------------------------------------
    def conflicts_with(self, other: "Cube") -> bool:
        """True when the two cubes require opposite values of some variable."""
        mine = self.as_dict()
        for name, val in other.literals:
            if name in mine and mine[name] != val:
                return True
        return False

    def intersect(self, other: "Cube") -> Optional["Cube"]:
        """Conjunction of two cubes, or ``None`` when they conflict."""
        if self.conflicts_with(other):
            return None
        merged = self.as_dict()
        merged.update(other.as_dict())
        return Cube(merged)

    def contains(self, other: "Cube") -> bool:
        """True when every assignment satisfying ``other`` satisfies ``self``."""
        other_map = other.as_dict()
        for name, val in self.literals:
            if other_map.get(name) != val:
                return False
        return True

    def satisfied_by(self, assignment: Mapping[str, bool]) -> bool:
        """True when the (total) assignment satisfies every literal."""
        return all(bool(assignment.get(name, False)) == val for name, val in self.literals)

    def drop(self, names: Iterable[str]) -> "Cube":
        """Existentially project away the given variables."""
        names = set(names)
        return Cube({name: val for name, val in self.literals if name not in names})

    def restrict(self, names: Iterable[str]) -> "Cube":
        """Keep only literals over the given variables."""
        names = set(names)
        return Cube({name: val for name, val in self.literals if name in names})

    def with_literal(self, name: str, value: bool) -> Optional["Cube"]:
        """Add a literal; ``None`` if it conflicts with an existing one."""
        current = self.value(name)
        if current is not None and current != value:
            return None
        merged = self.as_dict()
        merged[name] = value
        return Cube(merged)

    # -- conversions ---------------------------------------------------------
    def to_expr(self) -> BoolExpr:
        """Convert to a :class:`BoolExpr` conjunction."""
        if not self.literals:
            return TRUE
        terms = [var(name) if val else not_(var(name)) for name, val in self.literals]
        return and_(*terms)

    def to_str(self) -> str:
        if not self.literals:
            return "1"
        return " & ".join(name if val else f"!{name}" for name, val in self.literals)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_str()


@dataclass(frozen=True)
class Cover:
    """A set of cubes interpreted as their disjunction."""

    cubes: Tuple[Cube, ...] = field(default_factory=tuple)

    def __init__(self, cubes: Iterable[Cube] = ()):
        unique: List[Cube] = []
        seen = set()
        for cube in cubes:
            if cube not in seen:
                seen.add(cube)
                unique.append(cube)
        object.__setattr__(self, "cubes", tuple(unique))

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __len__(self) -> int:
        return len(self.cubes)

    def is_false(self) -> bool:
        return not self.cubes

    def is_true(self) -> bool:
        return any(cube.is_true() for cube in self.cubes)

    def variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for cube in self.cubes:
            names = names | cube.variables()
        return names

    def satisfied_by(self, assignment: Mapping[str, bool]) -> bool:
        return any(cube.satisfied_by(assignment) for cube in self.cubes)

    def add(self, cube: Cube) -> "Cover":
        return Cover(list(self.cubes) + [cube])

    def union(self, other: "Cover") -> "Cover":
        return Cover(list(self.cubes) + list(other.cubes))

    def remove_redundant(self) -> "Cover":
        """Drop cubes contained in other cubes of the cover."""
        kept: List[Cube] = []
        for cube in self.cubes:
            if any(other is not cube and other.contains(cube) for other in self.cubes):
                # keep the larger cube instead; ties broken by first occurrence
                if any(other.contains(cube) and not cube.contains(other) for other in self.cubes):
                    continue
                if any(
                    other is not cube and other.contains(cube) and cube.contains(other)
                    and self.cubes.index(other) < self.cubes.index(cube)
                    for other in self.cubes
                ):
                    continue
            kept.append(cube)
        return Cover(kept)

    def to_expr(self) -> BoolExpr:
        if not self.cubes:
            return FALSE
        return or_(*(cube.to_expr() for cube in self.cubes))

    def to_str(self) -> str:
        if not self.cubes:
            return "0"
        parts = []
        for cube in self.cubes:
            text = cube.to_str()
            parts.append(f"({text})" if len(cube) > 1 else text)
        return " | ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_str()


def cover_from_expr(expr: BoolExpr, names: Sequence[str] | None = None) -> Cover:
    """Enumerate the minterms of ``expr`` over ``names`` as a cover.

    The result is not minimised; feed it to :func:`minimize_cover` to get a
    compact two-level representation.
    """
    if names is None:
        names = sorted(expr.variables())
    cubes = []
    from .boolexpr import all_assignments

    for assignment in all_assignments(list(names)):
        if expr.evaluate(assignment):
            cubes.append(Cube(assignment))
    return Cover(cubes)


def _merge_cubes(left: Cube, right: Cube) -> Optional[Cube]:
    """Combine two cubes differing in exactly one literal's polarity."""
    if left.variables() != right.variables():
        return None
    left_map = left.as_dict()
    right_map = right.as_dict()
    differing = [name for name in left_map if left_map[name] != right_map[name]]
    if len(differing) != 1:
        return None
    merged = dict(left_map)
    del merged[differing[0]]
    return Cube(merged)


def minimize_cover(cover: Cover, names: Sequence[str] | None = None) -> Cover:
    """Quine–McCluskey style two-level minimisation.

    Computes the prime implicants by iterated pairwise merging, then greedily
    selects a small set of primes that covers every original minterm.  Exact
    minimality is not guaranteed (the covering step is greedy) but results are
    canonical enough for legible ``T_M`` labels and transition guards.
    """
    if cover.is_false():
        return cover
    if names is None:
        names = sorted(cover.variables())
    if not names:
        return Cover([Cube()]) if cover.cubes else cover

    # Expand every cube to full minterms over `names` so merging is uniform.
    minterm_cubes: List[Cube] = []
    from .boolexpr import all_assignments

    expr = cover.to_expr()
    for assignment in all_assignments(list(names)):
        if expr.evaluate(assignment):
            minterm_cubes.append(Cube(assignment))
    if not minterm_cubes:
        return Cover([])
    if len(minterm_cubes) == 1 << len(names):
        return Cover([Cube()])

    # Iteratively merge cubes differing in one bit to obtain prime implicants.
    current = set(minterm_cubes)
    primes = set()
    while current:
        merged_any = set()
        used = set()
        current_list = sorted(current, key=lambda c: c.literals)
        for i, left in enumerate(current_list):
            for right in current_list[i + 1:]:
                merged = _merge_cubes(left, right)
                if merged is not None:
                    merged_any.add(merged)
                    used.add(left)
                    used.add(right)
        primes |= current - used
        current = merged_any

    # Greedy prime cover of the original minterms.
    remaining = set(minterm_cubes)
    chosen: List[Cube] = []
    prime_list = sorted(primes, key=lambda c: (len(c), c.literals))
    # Essential primes first: minterms covered by exactly one prime.
    for minterm in list(remaining):
        covering = [prime for prime in prime_list if prime.contains(minterm)]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for prime in chosen:
        remaining = {m for m in remaining if not prime.contains(m)}
    while remaining:
        best = max(prime_list, key=lambda prime: sum(1 for m in remaining if prime.contains(m)))
        if not any(best.contains(m) for m in remaining):  # pragma: no cover - defensive
            break
        chosen.append(best)
        remaining = {m for m in remaining if not best.contains(m)}
    return Cover(chosen)
