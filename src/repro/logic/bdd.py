"""A compact reduced ordered binary decision diagram (ROBDD) package.

The BDD manager provides canonical boolean function representation used by:

* :mod:`repro.rtl.fsm` for reachability and transition-relation reasoning,
* :mod:`repro.core.tm` to minimise state labels before printing ``T_M``,
* equivalence checks between combinational blocks and their specifications.

The implementation is a classic hash-consed ITE-based manager with
complement-free nodes (both branches stored explicitly), existential and
universal quantification, restriction, satisfying-assignment enumeration and
conversion back to :class:`~repro.logic.boolexpr.BoolExpr`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .boolexpr import (
    AndExpr,
    BoolExpr,
    Const,
    NotExpr,
    OrExpr,
    Var,
    XorExpr,
    and_,
    or_,
)
from .cube import Cube, Cover

__all__ = ["BDD", "BDDManager", "BDDError"]


class BDDError(Exception):
    """Raised for invalid BDD operations (unknown variables, manager mixing)."""


@dataclass(frozen=True)
class _Node:
    """Internal decision node: branch on ``level`` (index into variable order)."""

    level: int
    low: int
    high: int


class BDDManager:
    """Owns the node table and variable order for a family of BDDs."""

    FALSE = 0
    TRUE = 1

    def __init__(self, variables: Sequence[str] = ()):
        self._order: List[str] = []
        self._level: Dict[str, int] = {}
        # Node table: index -> (level, low, high).  0/1 are terminals.
        self._nodes: List[Optional[_Node]] = [None, None]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        for name in variables:
            self.declare(name)

    # -- variable management -------------------------------------------------
    def declare(self, name: str) -> None:
        """Declare a variable; order of declaration is the BDD variable order."""
        if name in self._level:
            return
        self._level[name] = len(self._order)
        self._order.append(name)

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(self._order)

    def level_of(self, name: str) -> int:
        try:
            return self._level[name]
        except KeyError as exc:
            raise BDDError(f"variable {name!r} not declared in BDD manager") from exc

    # -- node construction ----------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(_Node(level, low, high))
            self._unique[key] = node
            # Track the process-wide node peak, sampled every 4096 nodes so
            # the hot construction path stays one bitmask test per node.
            if not (node & 0xFFF):
                from ..obs import metrics

                metrics().gauge_max("bdd.nodes", node)
        return node

    def true(self) -> "BDD":
        return BDD(self, self.TRUE)

    def false(self) -> "BDD":
        return BDD(self, self.FALSE)

    def var(self, name: str) -> "BDD":
        self.declare(name)
        return BDD(self, self._mk(self.level_of(name), self.FALSE, self.TRUE))

    def nvar(self, name: str) -> "BDD":
        self.declare(name)
        return BDD(self, self._mk(self.level_of(name), self.TRUE, self.FALSE))

    # -- core ITE -------------------------------------------------------------
    def _top_level(self, *roots: int) -> int:
        levels = [self._nodes[r].level for r in roots if r > 1]
        return min(levels) if levels else len(self._order)

    def _cofactors(self, root: int, level: int) -> Tuple[int, int]:
        if root <= 1:
            return root, root
        node = self._nodes[root]
        if node.level == level:
            return node.low, node.high
        return root, root

    def _ite(self, f: int, g: int, h: int) -> int:
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = self._top_level(f, g, h)
        f_low, f_high = self._cofactors(f, level)
        g_low, g_high = self._cofactors(g, level)
        h_low, h_high = self._cofactors(h, level)
        low = self._ite(f_low, g_low, h_low)
        high = self._ite(f_high, g_high, h_high)
        result = self._mk(level, low, high)
        self._ite_cache[key] = result
        return result

    # -- conversions ------------------------------------------------------------
    def from_expr(self, expr: BoolExpr) -> "BDD":
        """Build a BDD from a boolean expression, declaring variables on the fly."""
        if isinstance(expr, Const):
            return self.true() if expr.value else self.false()
        if isinstance(expr, Var):
            return self.var(expr.name)
        if isinstance(expr, NotExpr):
            return ~self.from_expr(expr.operand)
        if isinstance(expr, AndExpr):
            result = self.true()
            for operand in expr.operands:
                result = result & self.from_expr(operand)
            return result
        if isinstance(expr, OrExpr):
            result = self.false()
            for operand in expr.operands:
                result = result | self.from_expr(operand)
            return result
        if isinstance(expr, XorExpr):
            result = self.false()
            for operand in expr.operands:
                result = result ^ self.from_expr(operand)
            return result
        raise BDDError(f"cannot convert expression of type {type(expr).__name__}")

    def from_cube(self, cube: Cube) -> "BDD":
        result = self.true()
        for name, value in cube:
            result = result & (self.var(name) if value else self.nvar(name))
        return result

    def node_count(self) -> int:
        """Total number of decision nodes allocated by the manager."""
        return len(self._nodes) - 2


class BDD:
    """A boolean function: a root index inside a :class:`BDDManager`."""

    __slots__ = ("manager", "root")

    def __init__(self, manager: BDDManager, root: int):
        self.manager = manager
        self.root = root

    # -- identity -------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BDD)
            and other.manager is self.manager
            and other.root == self.root
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.root))

    def _check(self, other: "BDD") -> None:
        if other.manager is not self.manager:
            raise BDDError("cannot combine BDDs from different managers")

    # -- boolean algebra --------------------------------------------------------
    def __and__(self, other: "BDD") -> "BDD":
        self._check(other)
        return BDD(self.manager, self.manager._ite(self.root, other.root, BDDManager.FALSE))

    def __or__(self, other: "BDD") -> "BDD":
        self._check(other)
        return BDD(self.manager, self.manager._ite(self.root, BDDManager.TRUE, other.root))

    def __xor__(self, other: "BDD") -> "BDD":
        self._check(other)
        return BDD(self.manager, self.manager._ite(self.root, (~other).root, other.root))

    def __invert__(self) -> "BDD":
        return BDD(self.manager, self.manager._ite(self.root, BDDManager.FALSE, BDDManager.TRUE))

    def implies(self, other: "BDD") -> "BDD":
        return (~self) | other

    def iff(self, other: "BDD") -> "BDD":
        return ~(self ^ other)

    def ite(self, when_true: "BDD", when_false: "BDD") -> "BDD":
        self._check(when_true)
        self._check(when_false)
        return BDD(self.manager, self.manager._ite(self.root, when_true.root, when_false.root))

    # -- predicates ---------------------------------------------------------------
    def is_true(self) -> bool:
        return self.root == BDDManager.TRUE

    def is_false(self) -> bool:
        return self.root == BDDManager.FALSE

    def equivalent(self, other: "BDD") -> bool:
        self._check(other)
        return self.root == other.root

    # -- structure ----------------------------------------------------------------
    def support(self) -> frozenset:
        """Set of variable names the function actually depends on."""
        names = set()
        seen = set()
        stack = [self.root]
        while stack:
            root = stack.pop()
            if root <= 1 or root in seen:
                continue
            seen.add(root)
            node = self.manager._nodes[root]
            names.add(self.manager.variables[node.level])
            stack.append(node.low)
            stack.append(node.high)
        return frozenset(names)

    # -- evaluation / quantification -----------------------------------------------
    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        root = self.root
        while root > 1:
            node = self.manager._nodes[root]
            name = self.manager.variables[node.level]
            root = node.high if assignment.get(name, False) else node.low
        return root == BDDManager.TRUE

    def restrict(self, assignment: Mapping[str, bool]) -> "BDD":
        """Cofactor with respect to a partial assignment."""
        result = self
        for name, value in assignment.items():
            literal = self.manager.var(name) if value else self.manager.nvar(name)
            positive = self.manager._ite(result.root, BDDManager.TRUE, BDDManager.FALSE)
            del positive  # restriction implemented via ite on cofactors below
            result = BDD(
                self.manager,
                self.manager._ite(
                    literal.root if value else (~literal).root,
                    self._cofactor_root(result.root, name, True),
                    self._cofactor_root(result.root, name, False),
                ),
            )
            # Simpler: directly take the cofactor.
            result = BDD(self.manager, self._cofactor_root(result.root, name, value))
        return result

    def _cofactor_root(self, root: int, name: str, value: bool) -> int:
        level = self.manager.level_of(name)
        cache: Dict[int, int] = {}

        def walk(node_root: int) -> int:
            if node_root <= 1:
                return node_root
            cached = cache.get(node_root)
            if cached is not None:
                return cached
            node = self.manager._nodes[node_root]
            if node.level == level:
                result = node.high if value else node.low
            elif node.level > level:
                result = node_root
            else:
                result = self.manager._mk(node.level, walk(node.low), walk(node.high))
            cache[node_root] = result
            return result

        return walk(root)

    def exists(self, names: Iterable[str]) -> "BDD":
        """Existential quantification over the given variables."""
        result = self
        for name in names:
            low = BDD(self.manager, self._cofactor_root(result.root, name, False))
            high = BDD(self.manager, self._cofactor_root(result.root, name, True))
            result = low | high
        return result

    def forall(self, names: Iterable[str]) -> "BDD":
        """Universal quantification over the given variables."""
        result = self
        for name in names:
            low = BDD(self.manager, self._cofactor_root(result.root, name, False))
            high = BDD(self.manager, self._cofactor_root(result.root, name, True))
            result = low & high
        return result

    def rename(self, mapping: Mapping[str, str]) -> "BDD":
        """Rename variables (compose with the identity on other variables).

        The renaming must be injective on the function's support and no
        target may already occur in it (so simultaneous swaps are rejected):
        renaming onto an existing variable silently merges two distinct
        dimensions of the function, which is never what a transition-relation
        shift wants, so it raises :class:`BDDError` instead.  Each pair is
        applied as the relational composition ``∃ old. f ∧ (new ↔ old)`` —
        linear passes over the DAG, never a round-trip through cube covers.
        """
        support = self.support()
        relevant = {
            old: new for old, new in mapping.items() if old != new and old in support
        }
        if not relevant:
            return self
        targets = list(relevant.values())
        if len(set(targets)) != len(targets):
            raise BDDError("rename maps two variables onto the same target")
        for new in targets:
            if new in support:
                raise BDDError(
                    f"rename target {new!r} already occurs in the function's support"
                )
        result = self
        for old, new in relevant.items():
            literal = self.manager.var(new)
            old_literal = self.manager.var(old)
            result = (result & literal.iff(old_literal)).exists([old])
        return result

    # -- enumeration ------------------------------------------------------------------
    def satisfying_cubes(self) -> Iterator[Cube]:
        """Yield disjoint cubes (one per BDD path to TRUE) covering the function."""

        def walk(root: int, partial: Dict[str, bool]) -> Iterator[Cube]:
            if root == BDDManager.FALSE:
                return
            if root == BDDManager.TRUE:
                yield Cube(dict(partial))
                return
            node = self.manager._nodes[root]
            name = self.manager.variables[node.level]
            partial[name] = False
            yield from walk(node.low, partial)
            partial[name] = True
            yield from walk(node.high, partial)
            del partial[name]

        yield from walk(self.root, {})

    def satisfying_assignments(self, names: Sequence[str]) -> Iterator[Dict[str, bool]]:
        """Yield all total assignments over ``names`` satisfying the function."""
        names = list(names)
        from .boolexpr import all_assignments

        for assignment in all_assignments(names):
            if self.evaluate(assignment):
                yield assignment

    def count_solutions(self, names: Sequence[str]) -> int:
        """Number of satisfying assignments over ``names``."""
        return sum(1 for _ in self.satisfying_assignments(names))

    # -- conversions --------------------------------------------------------------------
    def to_cover(self, minimize: bool = True) -> Cover:
        """Return a cube cover of the function (optionally QM-minimised)."""
        cover = Cover(list(self.satisfying_cubes()))
        if not minimize or cover.is_false() or cover.is_true():
            return cover
        from .cube import minimize_cover

        names = sorted(self.support())
        return minimize_cover(cover, names)

    def to_expr(self, minimize: bool = True) -> BoolExpr:
        """Convert back to a boolean expression (sum of cubes)."""
        if self.is_true():
            return and_()
        if self.is_false():
            return or_()
        return self.to_cover(minimize=minimize).to_expr()
