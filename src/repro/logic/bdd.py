"""A compact reduced ordered binary decision diagram (ROBDD) package.

The BDD manager provides canonical boolean function representation used by:

* :mod:`repro.rtl.fsm` for reachability and transition-relation reasoning,
* :mod:`repro.core.tm` to minimise state labels before printing ``T_M``,
* equivalence checks between combinational blocks and their specifications.

The implementation is a classic hash-consed ITE-based manager with
complement-free nodes (both branches stored explicitly), existential and
universal quantification, restriction, satisfying-assignment enumeration and
conversion back to :class:`~repro.logic.boolexpr.BoolExpr`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .boolexpr import (
    AndExpr,
    BoolExpr,
    Const,
    NotExpr,
    OrExpr,
    Var,
    XorExpr,
    and_,
    or_,
)
from .cube import Cube, Cover

__all__ = ["BDD", "BDDManager", "BDDError"]


class BDDError(Exception):
    """Raised for invalid BDD operations (unknown variables, manager mixing)."""


@dataclass(frozen=True)
class _Node:
    """Internal decision node: branch on ``level`` (index into variable order)."""

    level: int
    low: int
    high: int


class BDDManager:
    """Owns the node table and variable order for a family of BDDs."""

    FALSE = 0
    TRUE = 1

    def __init__(self, variables: Sequence[str] = ()):
        self._order: List[str] = []
        self._level: Dict[str, int] = {}
        # Node table: index -> (level, low, high).  0/1 are terminals.
        self._nodes: List[Optional[_Node]] = [None, None]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        # Every currently-allocated node id at each level, plus the free list
        # of slots reclaimed by :meth:`collect_garbage` (ids are stable for
        # live nodes; freed slots are reused by ``_mk``).
        self._by_level: List[List[int]] = []
        self._free: List[int] = []
        for name in variables:
            self.declare(name)

    # -- variable management -------------------------------------------------
    def declare(self, name: str) -> None:
        """Declare a variable; order of declaration is the BDD variable order."""
        if name in self._level:
            return
        self._level[name] = len(self._order)
        self._order.append(name)
        self._by_level.append([])

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(self._order)

    def level_of(self, name: str) -> int:
        try:
            return self._level[name]
        except KeyError as exc:
            raise BDDError(f"variable {name!r} not declared in BDD manager") from exc

    # -- node construction ----------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            if self._free:
                node = self._free.pop()
                self._nodes[node] = _Node(level, low, high)
            else:
                node = len(self._nodes)
                self._nodes.append(_Node(level, low, high))
                # Track the process-wide node peak, sampled every 4096 nodes
                # so the hot construction path stays one bitmask test per
                # node.
                if not (node & 0xFFF):
                    from ..obs import metrics

                    metrics().gauge_max("bdd.nodes", node)
            self._unique[key] = node
            self._by_level[level].append(node)
        return node

    def true(self) -> "BDD":
        return BDD(self, self.TRUE)

    def false(self) -> "BDD":
        return BDD(self, self.FALSE)

    def var(self, name: str) -> "BDD":
        self.declare(name)
        return BDD(self, self._mk(self.level_of(name), self.FALSE, self.TRUE))

    def nvar(self, name: str) -> "BDD":
        self.declare(name)
        return BDD(self, self._mk(self.level_of(name), self.TRUE, self.FALSE))

    # -- core ITE -------------------------------------------------------------
    def _top_level(self, *roots: int) -> int:
        levels = [self._nodes[r].level for r in roots if r > 1]
        return min(levels) if levels else len(self._order)

    def _cofactors(self, root: int, level: int) -> Tuple[int, int]:
        if root <= 1:
            return root, root
        node = self._nodes[root]
        if node.level == level:
            return node.low, node.high
        return root, root

    def _ite(self, f: int, g: int, h: int) -> int:
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = self._top_level(f, g, h)
        f_low, f_high = self._cofactors(f, level)
        g_low, g_high = self._cofactors(g, level)
        h_low, h_high = self._cofactors(h, level)
        low = self._ite(f_low, g_low, h_low)
        high = self._ite(f_high, g_high, h_high)
        result = self._mk(level, low, high)
        self._ite_cache[key] = result
        return result

    # -- conversions ------------------------------------------------------------
    def from_expr(self, expr: BoolExpr) -> "BDD":
        """Build a BDD from a boolean expression, declaring variables on the fly."""
        if isinstance(expr, Const):
            return self.true() if expr.value else self.false()
        if isinstance(expr, Var):
            return self.var(expr.name)
        if isinstance(expr, NotExpr):
            return ~self.from_expr(expr.operand)
        if isinstance(expr, AndExpr):
            result = self.true()
            for operand in expr.operands:
                result = result & self.from_expr(operand)
            return result
        if isinstance(expr, OrExpr):
            result = self.false()
            for operand in expr.operands:
                result = result | self.from_expr(operand)
            return result
        if isinstance(expr, XorExpr):
            result = self.false()
            for operand in expr.operands:
                result = result ^ self.from_expr(operand)
            return result
        raise BDDError(f"cannot convert expression of type {type(expr).__name__}")

    def from_cube(self, cube: Cube) -> "BDD":
        result = self.true()
        for name, value in cube:
            result = result & (self.var(name) if value else self.nvar(name))
        return result

    def node_count(self) -> int:
        """Number of decision nodes currently allocated by the manager."""
        return len(self._nodes) - 2 - len(self._free)

    # -- dynamic variable reordering ------------------------------------------
    def collect_garbage(self, roots: Iterable[object]) -> int:
        """Reclaim every node unreachable from ``roots``; returns the count.

        ``roots`` (node ids or :class:`BDD` handles) must cover **every**
        function the caller still holds a handle to: ids of collected nodes
        are recycled by later constructions, so a handle omitted here
        silently starts denoting a different function.  Live ids are stable.
        The ITE cache is dropped (its entries may reference reclaimed ids).
        """
        root_ids = [root.root if isinstance(root, BDD) else root for root in roots]
        live = set()
        stack = [root for root in root_ids if root > 1]
        while stack:
            ident = stack.pop()
            if ident in live:
                continue
            live.add(ident)
            node = self._nodes[ident]
            if node.low > 1:
                stack.append(node.low)
            if node.high > 1:
                stack.append(node.high)
        collected = 0
        for level in range(len(self._order)):
            keep: List[int] = []
            for ident in self._by_level[level]:
                if ident in live:
                    keep.append(ident)
                else:
                    node = self._nodes[ident]
                    self._unique.pop((node.level, node.low, node.high), None)
                    self._nodes[ident] = None
                    self._free.append(ident)
                    collected += 1
            self._by_level[level] = keep
        if collected:
            self._ite_cache.clear()
        return collected

    def live_node_count(self, roots: Iterable[int]) -> int:
        """Number of distinct decision nodes reachable from ``roots``.

        This — not :meth:`node_count` — is the size metric reordering
        optimises: the table itself never shrinks (there is no garbage
        collection), but the DAGs the fixpoint operations actually traverse
        do.
        """
        seen = set()
        stack = [root for root in roots if root > 1]
        while stack:
            ident = stack.pop()
            if ident in seen:
                continue
            seen.add(ident)
            node = self._nodes[ident]
            if node.low > 1:
                stack.append(node.low)
            if node.high > 1:
                stack.append(node.high)
        return len(seen)

    def swap_adjacent(self, level: int) -> None:
        """Exchange the variables at ``level`` and ``level + 1`` in place.

        Every node index keeps denoting the same boolean function under the
        new order, so outstanding :class:`BDD` handles — and the ITE cache,
        whose entries relate functions, not shapes — remain valid; only the
        shared DAG is restructured.  Three node classes at the two levels:

        * lower-level nodes move up unchanged (their functions do not
          involve the variable moving down past them),
        * upper-level nodes with no lower-level child move down unchanged,
        * *mixed* upper-level nodes are rewritten in place around the new
          top variable: ``A?(B?f11:f10):(B?f01:f00)`` becomes
          ``B?(A?f11:f01):(A?f10:f00)`` with freshly hash-consed children.

        Post-swap keys never collide across classes (a rewritten mixed node
        always keeps at least one child at the lower level, movers never
        do), so re-registering the unique table is collision-free.
        """
        if not 0 <= level < len(self._order) - 1:
            raise BDDError("swap level out of range")
        upper, lower = level, level + 1
        upper_nodes = self._by_level[upper]
        lower_nodes = self._by_level[lower]
        lower_set = set(lower_nodes)
        # Drop every old key of both levels before registering any new one:
        # a mover's new key can equal a sibling's old key.
        for ident in upper_nodes + lower_nodes:
            node = self._nodes[ident]
            self._unique.pop((node.level, node.low, node.high), None)
        pure: List[int] = []
        mixed: List[int] = []
        for ident in upper_nodes:
            node = self._nodes[ident]
            if node.low in lower_set or node.high in lower_set:
                mixed.append(ident)
            else:
                pure.append(ident)
        # Lower-level nodes move up ...
        for ident in lower_nodes:
            node = self._nodes[ident]
            self._nodes[ident] = _Node(upper, node.low, node.high)
            self._unique[(upper, node.low, node.high)] = ident
        # ... pure upper-level nodes move down ...
        self._by_level[lower] = pure
        for ident in pure:
            node = self._nodes[ident]
            self._nodes[ident] = _Node(lower, node.low, node.high)
            self._unique[(lower, node.low, node.high)] = ident
        # ... and mixed nodes are rewritten around the swapped top variable.
        # ``_mk`` below may extend ``_by_level[lower]`` with new children or
        # share a just-moved pure node; both read the post-move unique table.
        for ident in mixed:
            node = self._nodes[ident]
            f0, f1 = node.low, node.high
            if f0 in lower_set:
                child = self._nodes[f0]
                f00, f01 = child.low, child.high
            else:
                f00 = f01 = f0
            if f1 in lower_set:
                child = self._nodes[f1]
                f10, f11 = child.low, child.high
            else:
                f10 = f11 = f1
            new_low = self._mk(lower, f00, f10)
            new_high = self._mk(lower, f01, f11)
            self._nodes[ident] = _Node(upper, new_low, new_high)
            self._unique[(upper, new_low, new_high)] = ident
        self._by_level[upper] = lower_nodes + mixed
        name_a, name_b = self._order[upper], self._order[lower]
        self._order[upper], self._order[lower] = name_b, name_a
        self._level[name_a], self._level[name_b] = lower, upper

    def sift(self, roots: Iterable[object], *, max_growth: float = 1.2) -> int:
        """Greedy sifting (Rudell): move each variable through all positions
        and leave it where the live DAG reachable from ``roots`` is smallest.

        ``roots`` accepts node ids or :class:`BDD` handles and — like
        :meth:`collect_garbage`, which sifting runs between variables to keep
        the swap working set from compounding — must cover every function the
        caller still holds a handle to.  Variables are processed in
        decreasing order of live-node occupancy; a direction is abandoned
        early once the live size exceeds ``max_growth`` times the best seen
        (the settle phase still returns to the best position).  Returns the
        number of adjacent swaps performed.
        """
        root_ids = [root.root if isinstance(root, BDD) else root for root in roots]
        levels = len(self._order)
        if levels < 2:
            return 0
        self.collect_garbage(root_ids)
        occupancy: Dict[str, int] = {name: 0 for name in self._order}
        seen = set()
        stack = [root for root in root_ids if root > 1]
        while stack:
            ident = stack.pop()
            if ident in seen:
                continue
            seen.add(ident)
            node = self._nodes[ident]
            occupancy[self._order[node.level]] += 1
            if node.low > 1:
                stack.append(node.low)
            if node.high > 1:
                stack.append(node.high)
        agenda = [
            name
            for name in sorted(occupancy, key=lambda n: (-occupancy[n], n))
            if occupancy[name]
        ]
        swaps = 0
        for name in agenda:
            best_size = self.live_node_count(root_ids)
            start = self._level[name]
            best_pos = start
            limit = best_size * max_growth + 4
            pos = start
            while pos < levels - 1:  # downward sweep
                self.swap_adjacent(pos)
                swaps += 1
                pos += 1
                size = self.live_node_count(root_ids)
                if size < best_size:
                    best_size, best_pos = size, pos
                    limit = best_size * max_growth + 4
                elif size > limit:
                    break
            while pos > start:  # return before exploring the other direction
                self.swap_adjacent(pos - 1)
                swaps += 1
                pos -= 1
            while pos > 0:  # upward sweep
                self.swap_adjacent(pos - 1)
                swaps += 1
                pos -= 1
                size = self.live_node_count(root_ids)
                if size < best_size:
                    best_size, best_pos = size, pos
                    limit = best_size * max_growth + 4
                elif size > limit:
                    break
            while pos > best_pos:  # settle at the best position seen
                self.swap_adjacent(pos - 1)
                swaps += 1
                pos -= 1
            while pos < best_pos:
                self.swap_adjacent(pos)
                swaps += 1
                pos += 1
            # Swapping rewrites abandon children; reclaim them before the
            # next variable so the per-swap working set stays near the live
            # size instead of compounding.
            self.collect_garbage(root_ids)
        if swaps:
            from ..obs import metrics

            metrics().inc("bdd.sift_swaps", swaps)
        return swaps


class BDD:
    """A boolean function: a root index inside a :class:`BDDManager`."""

    __slots__ = ("manager", "root")

    def __init__(self, manager: BDDManager, root: int):
        self.manager = manager
        self.root = root

    # -- identity -------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BDD)
            and other.manager is self.manager
            and other.root == self.root
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.root))

    def _check(self, other: "BDD") -> None:
        if other.manager is not self.manager:
            raise BDDError("cannot combine BDDs from different managers")

    # -- boolean algebra --------------------------------------------------------
    def __and__(self, other: "BDD") -> "BDD":
        self._check(other)
        return BDD(self.manager, self.manager._ite(self.root, other.root, BDDManager.FALSE))

    def __or__(self, other: "BDD") -> "BDD":
        self._check(other)
        return BDD(self.manager, self.manager._ite(self.root, BDDManager.TRUE, other.root))

    def __xor__(self, other: "BDD") -> "BDD":
        self._check(other)
        return BDD(self.manager, self.manager._ite(self.root, (~other).root, other.root))

    def __invert__(self) -> "BDD":
        return BDD(self.manager, self.manager._ite(self.root, BDDManager.FALSE, BDDManager.TRUE))

    def implies(self, other: "BDD") -> "BDD":
        return (~self) | other

    def iff(self, other: "BDD") -> "BDD":
        return ~(self ^ other)

    def ite(self, when_true: "BDD", when_false: "BDD") -> "BDD":
        self._check(when_true)
        self._check(when_false)
        return BDD(self.manager, self.manager._ite(self.root, when_true.root, when_false.root))

    # -- predicates ---------------------------------------------------------------
    def is_true(self) -> bool:
        return self.root == BDDManager.TRUE

    def is_false(self) -> bool:
        return self.root == BDDManager.FALSE

    def equivalent(self, other: "BDD") -> bool:
        self._check(other)
        return self.root == other.root

    # -- structure ----------------------------------------------------------------
    def support(self) -> frozenset:
        """Set of variable names the function actually depends on."""
        names = set()
        seen = set()
        stack = [self.root]
        while stack:
            root = stack.pop()
            if root <= 1 or root in seen:
                continue
            seen.add(root)
            node = self.manager._nodes[root]
            names.add(self.manager.variables[node.level])
            stack.append(node.low)
            stack.append(node.high)
        return frozenset(names)

    # -- evaluation / quantification -----------------------------------------------
    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        root = self.root
        while root > 1:
            node = self.manager._nodes[root]
            name = self.manager.variables[node.level]
            root = node.high if assignment.get(name, False) else node.low
        return root == BDDManager.TRUE

    def restrict(self, assignment: Mapping[str, bool]) -> "BDD":
        """Cofactor with respect to a partial assignment."""
        result = self
        for name, value in assignment.items():
            literal = self.manager.var(name) if value else self.manager.nvar(name)
            positive = self.manager._ite(result.root, BDDManager.TRUE, BDDManager.FALSE)
            del positive  # restriction implemented via ite on cofactors below
            result = BDD(
                self.manager,
                self.manager._ite(
                    literal.root if value else (~literal).root,
                    self._cofactor_root(result.root, name, True),
                    self._cofactor_root(result.root, name, False),
                ),
            )
            # Simpler: directly take the cofactor.
            result = BDD(self.manager, self._cofactor_root(result.root, name, value))
        return result

    def _cofactor_root(self, root: int, name: str, value: bool) -> int:
        level = self.manager.level_of(name)
        cache: Dict[int, int] = {}

        def walk(node_root: int) -> int:
            if node_root <= 1:
                return node_root
            cached = cache.get(node_root)
            if cached is not None:
                return cached
            node = self.manager._nodes[node_root]
            if node.level == level:
                result = node.high if value else node.low
            elif node.level > level:
                result = node_root
            else:
                result = self.manager._mk(node.level, walk(node.low), walk(node.high))
            cache[node_root] = result
            return result

        return walk(root)

    def exists(self, names: Iterable[str]) -> "BDD":
        """Existential quantification over the given variables."""
        result = self
        for name in names:
            low = BDD(self.manager, self._cofactor_root(result.root, name, False))
            high = BDD(self.manager, self._cofactor_root(result.root, name, True))
            result = low | high
        return result

    def forall(self, names: Iterable[str]) -> "BDD":
        """Universal quantification over the given variables."""
        result = self
        for name in names:
            low = BDD(self.manager, self._cofactor_root(result.root, name, False))
            high = BDD(self.manager, self._cofactor_root(result.root, name, True))
            result = low & high
        return result

    def rename(self, mapping: Mapping[str, str]) -> "BDD":
        """Rename variables (compose with the identity on other variables).

        The renaming must be injective on the function's support and no
        target may already occur in it (so simultaneous swaps are rejected):
        renaming onto an existing variable silently merges two distinct
        dimensions of the function, which is never what a transition-relation
        shift wants, so it raises :class:`BDDError` instead.  Each pair is
        applied as the relational composition ``∃ old. f ∧ (new ↔ old)`` —
        linear passes over the DAG, never a round-trip through cube covers.
        """
        support = self.support()
        relevant = {
            old: new for old, new in mapping.items() if old != new and old in support
        }
        if not relevant:
            return self
        targets = list(relevant.values())
        if len(set(targets)) != len(targets):
            raise BDDError("rename maps two variables onto the same target")
        for new in targets:
            if new in support:
                raise BDDError(
                    f"rename target {new!r} already occurs in the function's support"
                )
        result = self
        for old, new in relevant.items():
            literal = self.manager.var(new)
            old_literal = self.manager.var(old)
            result = (result & literal.iff(old_literal)).exists([old])
        return result

    # -- enumeration ------------------------------------------------------------------
    def satisfying_cubes(self) -> Iterator[Cube]:
        """Yield disjoint cubes (one per BDD path to TRUE) covering the function."""

        def walk(root: int, partial: Dict[str, bool]) -> Iterator[Cube]:
            if root == BDDManager.FALSE:
                return
            if root == BDDManager.TRUE:
                yield Cube(dict(partial))
                return
            node = self.manager._nodes[root]
            name = self.manager.variables[node.level]
            partial[name] = False
            yield from walk(node.low, partial)
            partial[name] = True
            yield from walk(node.high, partial)
            del partial[name]

        yield from walk(self.root, {})

    def satisfying_assignments(self, names: Sequence[str]) -> Iterator[Dict[str, bool]]:
        """Yield all total assignments over ``names`` satisfying the function."""
        names = list(names)
        from .boolexpr import all_assignments

        for assignment in all_assignments(names):
            if self.evaluate(assignment):
                yield assignment

    def count_solutions(self, names: Sequence[str]) -> int:
        """Number of satisfying assignments over ``names``."""
        return sum(1 for _ in self.satisfying_assignments(names))

    # -- conversions --------------------------------------------------------------------
    def to_cover(self, minimize: bool = True) -> Cover:
        """Return a cube cover of the function (optionally QM-minimised)."""
        cover = Cover(list(self.satisfying_cubes()))
        if not minimize or cover.is_false() or cover.is_true():
            return cover
        from .cube import minimize_cover

        names = sorted(self.support())
        return minimize_cover(cover, names)

    def to_expr(self, minimize: bool = True) -> BoolExpr:
        """Convert back to a boolean expression (sum of cubes)."""
        if self.is_true():
            return and_()
        if self.is_false():
            return or_()
        return self.to_cover(minimize=minimize).to_expr()
