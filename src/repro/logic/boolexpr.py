"""Boolean expression layer.

Boolean expressions are the workhorse of the RTL substrate: combinational
assignments, latch next-state functions, FSM transition guards and state
labels are all :class:`BoolExpr` trees over named signals.

The representation is a small immutable AST (``Var``, ``Const``, ``NotExpr``,
``AndExpr``, ``OrExpr``, ``XorExpr``) with structural hashing so expressions
can be used as dictionary keys and deduplicated.  Convenience operators are
provided (``&``, ``|``, ``^``, ``~``) together with evaluation, substitution,
cofactoring, constant-propagation simplification and truth-table utilities.

The module is deliberately free of any BDD machinery; canonical reasoning
lives in :mod:`repro.logic.bdd`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Sequence, Tuple

__all__ = [
    "BoolExpr",
    "Var",
    "Const",
    "NotExpr",
    "AndExpr",
    "OrExpr",
    "XorExpr",
    "TRUE",
    "FALSE",
    "var",
    "const",
    "and_",
    "or_",
    "xor",
    "implies",
    "iff",
    "mux",
    "all_assignments",
    "truth_table",
    "expr_equivalent",
    "is_tautology",
    "is_contradiction",
    "minterms",
]


class BoolExpr:
    """Base class of all boolean expression nodes.

    Instances are immutable and hashable; subclasses are small frozen
    dataclasses.  The operator overloads build new nodes with light
    constant folding (``x & TRUE`` returns ``x``).
    """

    __slots__ = ()

    # -- operator overloads -------------------------------------------------
    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return and_(self, other)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return or_(self, other)

    def __xor__(self, other: "BoolExpr") -> "BoolExpr":
        return xor(self, other)

    def __invert__(self) -> "BoolExpr":
        return not_(self)

    def __rshift__(self, other: "BoolExpr") -> "BoolExpr":
        """``a >> b`` builds the implication ``a -> b``."""
        return implies(self, other)

    # -- core API -----------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate under a total assignment of the expression's variables."""
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        """Return the set of variable names appearing in the expression."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "BoolExpr"]) -> "BoolExpr":
        """Simultaneously substitute variables by expressions."""
        raise NotImplementedError

    def cofactor(self, name: str, value: bool) -> "BoolExpr":
        """Shannon cofactor: substitute ``name`` by a constant and simplify."""
        return self.substitute({name: const(value)}).simplify()

    def simplify(self) -> "BoolExpr":
        """Constant propagation and local simplification (not canonical)."""
        return self

    # -- rendering ----------------------------------------------------------
    def __str__(self) -> str:  # pragma: no cover - exercised via to_str tests
        return self.to_str()

    def to_str(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Var(BoolExpr):
    """A named boolean signal."""

    name: str

    __slots__ = ("name",)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        try:
            return bool(assignment[self.name])
        except KeyError as exc:
            raise KeyError(f"no value for variable {self.name!r}") from exc

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def substitute(self, mapping: Mapping[str, BoolExpr]) -> BoolExpr:
        return mapping.get(self.name, self)

    def to_str(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(BoolExpr):
    """A boolean constant (``TRUE`` / ``FALSE``)."""

    value: bool

    __slots__ = ("value",)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.value

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[str, BoolExpr]) -> BoolExpr:
        return self

    def to_str(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class NotExpr(BoolExpr):
    """Logical negation."""

    operand: BoolExpr

    __slots__ = ("operand",)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def substitute(self, mapping: Mapping[str, BoolExpr]) -> BoolExpr:
        return not_(self.operand.substitute(mapping))

    def simplify(self) -> BoolExpr:
        inner = self.operand.simplify()
        if isinstance(inner, Const):
            return const(not inner.value)
        if isinstance(inner, NotExpr):
            return inner.operand
        return not_(inner)

    def to_str(self) -> str:
        inner = self.operand
        if isinstance(inner, (Var, Const, NotExpr)):
            return f"!{inner.to_str()}"
        return f"!({inner.to_str()})"


@dataclass(frozen=True)
class _NaryExpr(BoolExpr):
    """Shared implementation of associative n-ary connectives."""

    operands: Tuple[BoolExpr, ...]

    __slots__ = ("operands",)

    _symbol = "?"

    def variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for operand in self.operands:
            names = names | operand.variables()
        return names

    def to_str(self) -> str:
        parts = []
        for operand in self.operands:
            text = operand.to_str()
            if isinstance(operand, _NaryExpr):
                text = f"({text})"
            parts.append(text)
        return f" {self._symbol} ".join(parts)


class AndExpr(_NaryExpr):
    """N-ary conjunction."""

    __slots__ = ()

    _symbol = "&"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return all(operand.evaluate(assignment) for operand in self.operands)

    def substitute(self, mapping: Mapping[str, BoolExpr]) -> BoolExpr:
        return and_(*(operand.substitute(mapping) for operand in self.operands))

    def simplify(self) -> BoolExpr:
        return and_(*(operand.simplify() for operand in self.operands))


class OrExpr(_NaryExpr):
    """N-ary disjunction."""

    __slots__ = ()

    _symbol = "|"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return any(operand.evaluate(assignment) for operand in self.operands)

    def substitute(self, mapping: Mapping[str, BoolExpr]) -> BoolExpr:
        return or_(*(operand.substitute(mapping) for operand in self.operands))

    def simplify(self) -> BoolExpr:
        return or_(*(operand.simplify() for operand in self.operands))


class XorExpr(_NaryExpr):
    """N-ary exclusive-or (true when an odd number of operands are true)."""

    __slots__ = ()

    _symbol = "^"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return sum(1 for operand in self.operands if operand.evaluate(assignment)) % 2 == 1

    def substitute(self, mapping: Mapping[str, BoolExpr]) -> BoolExpr:
        return xor(*(operand.substitute(mapping) for operand in self.operands))

    def simplify(self) -> BoolExpr:
        return xor(*(operand.simplify() for operand in self.operands))


TRUE = Const(True)
FALSE = Const(False)


def var(name: str) -> Var:
    """Create a variable node."""
    if not name:
        raise ValueError("variable name must be non-empty")
    return Var(name)


def const(value: bool) -> Const:
    """Create a constant node."""
    return TRUE if value else FALSE


def not_(operand: BoolExpr) -> BoolExpr:
    """Negation with double-negation and constant folding."""
    if isinstance(operand, Const):
        return const(not operand.value)
    if isinstance(operand, NotExpr):
        return operand.operand
    return NotExpr(operand)


def _flatten(cls, operands: Iterable[BoolExpr]) -> Iterator[BoolExpr]:
    for operand in operands:
        if isinstance(operand, cls):
            yield from operand.operands
        else:
            yield operand


def and_(*operands: BoolExpr) -> BoolExpr:
    """Conjunction with flattening, deduplication and constant folding."""
    flat = []
    seen = set()
    for operand in _flatten(AndExpr, operands):
        if isinstance(operand, Const):
            if not operand.value:
                return FALSE
            continue
        if operand in seen:
            continue
        seen.add(operand)
        flat.append(operand)
    for operand in flat:
        if not_(operand) in seen:
            return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return AndExpr(tuple(flat))


def or_(*operands: BoolExpr) -> BoolExpr:
    """Disjunction with flattening, deduplication and constant folding."""
    flat = []
    seen = set()
    for operand in _flatten(OrExpr, operands):
        if isinstance(operand, Const):
            if operand.value:
                return TRUE
            continue
        if operand in seen:
            continue
        seen.add(operand)
        flat.append(operand)
    for operand in flat:
        if not_(operand) in seen:
            return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return OrExpr(tuple(flat))


def xor(*operands: BoolExpr) -> BoolExpr:
    """Exclusive-or with constant folding and pair cancellation."""
    parity = False
    counts: Dict[BoolExpr, int] = {}
    order = []
    for operand in _flatten(XorExpr, operands):
        if isinstance(operand, Const):
            parity ^= operand.value
            continue
        if operand not in counts:
            counts[operand] = 0
            order.append(operand)
        counts[operand] += 1
    flat = [operand for operand in order if counts[operand] % 2 == 1]
    if not flat:
        return const(parity)
    expr: BoolExpr
    if len(flat) == 1:
        expr = flat[0]
    else:
        expr = XorExpr(tuple(flat))
    return not_(expr) if parity else expr


def implies(antecedent: BoolExpr, consequent: BoolExpr) -> BoolExpr:
    """Implication ``antecedent -> consequent`` as ``!a | b``."""
    return or_(not_(antecedent), consequent)


def iff(left: BoolExpr, right: BoolExpr) -> BoolExpr:
    """Biconditional ``left <-> right``."""
    return or_(and_(left, right), and_(not_(left), not_(right)))


def mux(select: BoolExpr, when_true: BoolExpr, when_false: BoolExpr) -> BoolExpr:
    """Two-way multiplexer ``select ? when_true : when_false``."""
    return or_(and_(select, when_true), and_(not_(select), when_false))


def all_assignments(names: Sequence[str]) -> Iterator[Dict[str, bool]]:
    """Iterate over all ``2**len(names)`` assignments in a stable order."""
    names = list(names)
    count = len(names)
    for bits in range(1 << count):
        yield {names[i]: bool((bits >> (count - 1 - i)) & 1) for i in range(count)}


def truth_table(expr: BoolExpr, names: Sequence[str] | None = None) -> Dict[Tuple[bool, ...], bool]:
    """Return the full truth table of ``expr`` keyed by input tuples."""
    if names is None:
        names = sorted(expr.variables())
    table = {}
    for assignment in all_assignments(list(names)):
        key = tuple(assignment[name] for name in names)
        table[key] = expr.evaluate(assignment)
    return table


def expr_equivalent(left: BoolExpr, right: BoolExpr) -> bool:
    """Semantic equivalence by exhaustive evaluation over the joint support."""
    names = sorted(left.variables() | right.variables())
    return all(
        left.evaluate(assignment) == right.evaluate(assignment)
        for assignment in all_assignments(names)
    )


def is_tautology(expr: BoolExpr) -> bool:
    """True when the expression evaluates to true under every assignment."""
    names = sorted(expr.variables())
    return all(expr.evaluate(assignment) for assignment in all_assignments(names))


def is_contradiction(expr: BoolExpr) -> bool:
    """True when the expression evaluates to false under every assignment."""
    names = sorted(expr.variables())
    return not any(expr.evaluate(assignment) for assignment in all_assignments(names))


def minterms(expr: BoolExpr, names: Sequence[str] | None = None) -> Iterator[Dict[str, bool]]:
    """Yield every satisfying assignment over ``names`` (defaults to support)."""
    if names is None:
        names = sorted(expr.variables())
    for assignment in all_assignments(list(names)):
        if expr.evaluate(assignment):
            yield assignment
