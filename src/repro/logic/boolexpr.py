"""Boolean expression layer: a hash-consed boolean kernel.

Boolean expressions are the workhorse of the RTL substrate: combinational
assignments, latch next-state functions, FSM transition guards and state
labels are all :class:`BoolExpr` trees over named signals.

The representation is a small immutable AST (``Var``, ``Const``, ``NotExpr``,
``AndExpr``, ``OrExpr``, ``XorExpr``).  Nodes are **hash-consed**: every
constructor interns through a global unique table (exactly like the unique
table of the BDD manager in :mod:`repro.logic.bdd`), so structurally equal
expressions are the *same object*.  That makes equality checks and dictionary
lookups effectively O(1) on shared structure, turns expression trees into
DAGs, and lets ``variables()``, ``substitute()`` and ``cofactor()`` memoise
their results.

Convenience operators are provided (``&``, ``|``, ``^``, ``~``) together with
evaluation, substitution, cofactoring, constant-propagation simplification and
truth-table utilities.

Decision procedures (:func:`is_tautology`, :func:`is_contradiction`,
:func:`expr_equivalent`) dispatch through the active propositional backend of
:mod:`repro.engines.prop` — truth-table enumeration, BDDs or CDCL SAT,
selected globally or per :class:`~repro.core.coverage.CoverageOptions`.  The
raw enumerating reference implementations remain available as
:func:`enumerate_is_tautology` etc. and back the ``table`` backend.
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Sequence, Tuple

__all__ = [
    "BoolExpr",
    "Var",
    "Const",
    "NotExpr",
    "AndExpr",
    "OrExpr",
    "XorExpr",
    "TRUE",
    "FALSE",
    "var",
    "const",
    "and_",
    "or_",
    "xor",
    "implies",
    "iff",
    "mux",
    "all_assignments",
    "truth_table",
    "expr_equivalent",
    "is_tautology",
    "is_contradiction",
    "minterms",
    "enumerate_is_tautology",
    "enumerate_is_contradiction",
    "enumerate_equivalent",
    "intern_stats",
    "clear_expr_caches",
]


# -- the unique table ---------------------------------------------------------
#
# One global table maps a structural key to the canonical node.  Keys hash the
# *children's identities* (children are themselves interned), so building a
# node costs O(arity) regardless of expression depth.  Values are held weakly
# (à la the classic hash-consing discipline): a node no longer reachable from
# user code is collected and its table entry — whose key tuple holds the only
# remaining strong references to the children — disappears with it, so the
# table tracks the live working set instead of growing monotonically.

_UNIQUE: "weakref.WeakValueDictionary[tuple, BoolExpr]" = weakref.WeakValueDictionary()

# Memoisation caches for the derived operations.  They are correct forever
# (expressions are immutable).  Unlike the unique table they hold *strong*
# references, so cached nodes (and their sub-DAGs) stay pinned until the size
# cap is hit, at which point the whole cache is dropped and memoisation
# restarts cold — a deliberate bounded-memory / recompute trade-off.
_COFACTOR_CACHE: Dict[Tuple["BoolExpr", str, bool], "BoolExpr"] = {}
_SIMPLIFY_CACHE: Dict["BoolExpr", "BoolExpr"] = {}
_CACHE_LIMIT = 1 << 17


def _cache_guard(cache: dict) -> None:
    if len(cache) >= _CACHE_LIMIT:
        cache.clear()


def intern_stats() -> Dict[str, int]:
    """Sizes of the unique table and the memoisation caches (for tests/tuning)."""
    return {
        "unique_nodes": len(_UNIQUE),
        "cofactor_cache": len(_COFACTOR_CACHE),
        "simplify_cache": len(_SIMPLIFY_CACHE),
    }


def clear_expr_caches() -> None:
    """Drop the derived-operation caches (the unique table itself is kept).

    The unique table is deliberately *not* cleared: discarding entries for
    live nodes would let two structurally equal nodes coexist, silently
    degrading the interning guarantee (``a is b``).  Dead nodes already leave
    the table on their own — it holds its values weakly.
    """
    _COFACTOR_CACHE.clear()
    _SIMPLIFY_CACHE.clear()


class BoolExpr:
    """Base class of all boolean expression nodes.

    Instances are immutable, interned and hashable.  The operator overloads
    build new nodes with light constant folding (``x & TRUE`` returns ``x``).
    """

    __slots__ = ("_hash", "_vars", "__weakref__")

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError(f"{type(self).__name__} instances are immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"{type(self).__name__} instances are immutable")

    def __hash__(self) -> int:
        return self._hash

    # Interned nodes are canonical: structural equality is object identity.
    def __eq__(self, other: object) -> bool:
        return self is other

    def __ne__(self, other: object) -> bool:
        return self is not other

    def __copy__(self) -> "BoolExpr":
        return self

    def __deepcopy__(self, memo) -> "BoolExpr":
        return self

    # -- operator overloads -------------------------------------------------
    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return and_(self, other)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return or_(self, other)

    def __xor__(self, other: "BoolExpr") -> "BoolExpr":
        return xor(self, other)

    def __invert__(self) -> "BoolExpr":
        return not_(self)

    def __rshift__(self, other: "BoolExpr") -> "BoolExpr":
        """``a >> b`` builds the implication ``a -> b``."""
        return implies(self, other)

    # -- core API -----------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate under a total assignment of the expression's variables."""
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        """Return the set of variable names appearing in the expression (memoised)."""
        cached = self._vars
        if cached is None:
            cached = self._compute_variables()
            object.__setattr__(self, "_vars", cached)
        return cached

    def _compute_variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "BoolExpr"]) -> "BoolExpr":
        """Simultaneously substitute variables by expressions.

        Substitution runs over the shared DAG with a per-call memo, so a
        sub-expression occurring many times is rewritten once.
        """
        if not mapping:
            return self
        return _substitute(self, mapping, {})

    def _substitute(self, mapping: Mapping[str, "BoolExpr"], memo: dict) -> "BoolExpr":
        raise NotImplementedError

    def cofactor(self, name: str, value: bool) -> "BoolExpr":
        """Shannon cofactor: substitute ``name`` by a constant and simplify."""
        key = (self, name, bool(value))
        cached = _COFACTOR_CACHE.get(key)
        if cached is None:
            cached = self.substitute({name: const(value)}).simplify()
            _cache_guard(_COFACTOR_CACHE)
            _COFACTOR_CACHE[key] = cached
        return cached

    def simplify(self) -> "BoolExpr":
        """Constant propagation and local simplification (not canonical)."""
        return self

    # -- rendering ----------------------------------------------------------
    def __str__(self) -> str:  # pragma: no cover - exercised via to_str tests
        return self.to_str()

    def to_str(self) -> str:
        raise NotImplementedError


def _substitute(expr: BoolExpr, mapping: Mapping[str, BoolExpr], memo: dict) -> BoolExpr:
    cached = memo.get(expr)
    if cached is None:
        cached = expr._substitute(mapping, memo)
        memo[expr] = cached
    return cached


def _intern(cls, payload, factory) -> "BoolExpr":
    key = (cls, payload)
    node = _UNIQUE.get(key)
    if node is None:
        node = factory(key)
        _UNIQUE[key] = node
    return node


def _new_node(cls, key) -> "BoolExpr":
    node = object.__new__(cls)
    object.__setattr__(node, "_hash", hash(key))
    object.__setattr__(node, "_vars", None)
    return node


class Var(BoolExpr):
    """A named boolean signal."""

    __slots__ = ("name",)

    def __new__(cls, name: str):
        def build(key):
            node = _new_node(cls, key)
            object.__setattr__(node, "name", name)
            return node

        return _intern(cls, name, build)

    def __repr__(self) -> str:
        return f"Var(name={self.name!r})"

    def __reduce__(self):
        return (Var, (self.name,))

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        try:
            return bool(assignment[self.name])
        except KeyError as exc:
            raise KeyError(f"no value for variable {self.name!r}") from exc

    def _compute_variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def _substitute(self, mapping: Mapping[str, BoolExpr], memo: dict) -> BoolExpr:
        return mapping.get(self.name, self)

    def to_str(self) -> str:
        return self.name


class Const(BoolExpr):
    """A boolean constant (``TRUE`` / ``FALSE``)."""

    __slots__ = ("value",)

    def __new__(cls, value: bool):
        value = bool(value)

        def build(key):
            node = _new_node(cls, key)
            object.__setattr__(node, "value", value)
            return node

        return _intern(cls, value, build)

    def __repr__(self) -> str:
        return f"Const(value={self.value!r})"

    def __reduce__(self):
        return (Const, (self.value,))

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.value

    def _compute_variables(self) -> FrozenSet[str]:
        return frozenset()

    def _substitute(self, mapping: Mapping[str, BoolExpr], memo: dict) -> BoolExpr:
        return self

    def to_str(self) -> str:
        return "1" if self.value else "0"


class NotExpr(BoolExpr):
    """Logical negation."""

    __slots__ = ("operand",)

    def __new__(cls, operand: BoolExpr):
        def build(key):
            node = _new_node(cls, key)
            object.__setattr__(node, "operand", operand)
            return node

        return _intern(cls, operand, build)

    def __repr__(self) -> str:
        return f"NotExpr(operand={self.operand!r})"

    def __reduce__(self):
        return (NotExpr, (self.operand,))

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def _compute_variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def _substitute(self, mapping: Mapping[str, BoolExpr], memo: dict) -> BoolExpr:
        return not_(_substitute(self.operand, mapping, memo))

    def simplify(self) -> BoolExpr:
        cached = _SIMPLIFY_CACHE.get(self)
        if cached is None:
            inner = self.operand.simplify()
            if isinstance(inner, Const):
                cached = const(not inner.value)
            elif isinstance(inner, NotExpr):
                cached = inner.operand
            else:
                cached = not_(inner)
            _cache_guard(_SIMPLIFY_CACHE)
            _SIMPLIFY_CACHE[self] = cached
        return cached

    def to_str(self) -> str:
        inner = self.operand
        if isinstance(inner, (Var, Const, NotExpr)):
            return f"!{inner.to_str()}"
        return f"!({inner.to_str()})"


class _NaryExpr(BoolExpr):
    """Shared implementation of associative n-ary connectives."""

    __slots__ = ("operands",)

    _symbol = "?"

    def __new__(cls, operands: Iterable[BoolExpr]):
        operands = tuple(operands)

        def build(key):
            node = _new_node(cls, key)
            object.__setattr__(node, "operands", operands)
            return node

        return _intern(cls, operands, build)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(operands={self.operands!r})"

    def __reduce__(self):
        return (type(self), (self.operands,))

    def _compute_variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for operand in self.operands:
            names = names | operand.variables()
        return names

    def to_str(self) -> str:
        parts = []
        for operand in self.operands:
            text = operand.to_str()
            if isinstance(operand, _NaryExpr):
                text = f"({text})"
            parts.append(text)
        return f" {self._symbol} ".join(parts)


class AndExpr(_NaryExpr):
    """N-ary conjunction."""

    __slots__ = ()

    _symbol = "&"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return all(operand.evaluate(assignment) for operand in self.operands)

    def _substitute(self, mapping: Mapping[str, BoolExpr], memo: dict) -> BoolExpr:
        return and_(*(_substitute(operand, mapping, memo) for operand in self.operands))

    def simplify(self) -> BoolExpr:
        cached = _SIMPLIFY_CACHE.get(self)
        if cached is None:
            cached = and_(*(operand.simplify() for operand in self.operands))
            _cache_guard(_SIMPLIFY_CACHE)
            _SIMPLIFY_CACHE[self] = cached
        return cached


class OrExpr(_NaryExpr):
    """N-ary disjunction."""

    __slots__ = ()

    _symbol = "|"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return any(operand.evaluate(assignment) for operand in self.operands)

    def _substitute(self, mapping: Mapping[str, BoolExpr], memo: dict) -> BoolExpr:
        return or_(*(_substitute(operand, mapping, memo) for operand in self.operands))

    def simplify(self) -> BoolExpr:
        cached = _SIMPLIFY_CACHE.get(self)
        if cached is None:
            cached = or_(*(operand.simplify() for operand in self.operands))
            _cache_guard(_SIMPLIFY_CACHE)
            _SIMPLIFY_CACHE[self] = cached
        return cached


class XorExpr(_NaryExpr):
    """N-ary exclusive-or (true when an odd number of operands are true)."""

    __slots__ = ()

    _symbol = "^"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return sum(1 for operand in self.operands if operand.evaluate(assignment)) % 2 == 1

    def _substitute(self, mapping: Mapping[str, BoolExpr], memo: dict) -> BoolExpr:
        return xor(*(_substitute(operand, mapping, memo) for operand in self.operands))

    def simplify(self) -> BoolExpr:
        cached = _SIMPLIFY_CACHE.get(self)
        if cached is None:
            cached = xor(*(operand.simplify() for operand in self.operands))
            _cache_guard(_SIMPLIFY_CACHE)
            _SIMPLIFY_CACHE[self] = cached
        return cached


TRUE = Const(True)
FALSE = Const(False)


def var(name: str) -> Var:
    """Create a variable node."""
    if not name:
        raise ValueError("variable name must be non-empty")
    return Var(name)


def const(value: bool) -> Const:
    """Create a constant node."""
    return TRUE if value else FALSE


def not_(operand: BoolExpr) -> BoolExpr:
    """Negation with double-negation and constant folding."""
    if isinstance(operand, Const):
        return const(not operand.value)
    if isinstance(operand, NotExpr):
        return operand.operand
    return NotExpr(operand)


def _flatten(cls, operands: Iterable[BoolExpr]) -> Iterator[BoolExpr]:
    for operand in operands:
        if isinstance(operand, cls):
            yield from operand.operands
        else:
            yield operand


def and_(*operands: BoolExpr) -> BoolExpr:
    """Conjunction with flattening, deduplication and constant folding."""
    flat = []
    seen = set()
    for operand in _flatten(AndExpr, operands):
        if isinstance(operand, Const):
            if not operand.value:
                return FALSE
            continue
        if operand in seen:
            continue
        seen.add(operand)
        flat.append(operand)
    for operand in flat:
        if not_(operand) in seen:
            return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return AndExpr(tuple(flat))


def or_(*operands: BoolExpr) -> BoolExpr:
    """Disjunction with flattening, deduplication and constant folding."""
    flat = []
    seen = set()
    for operand in _flatten(OrExpr, operands):
        if isinstance(operand, Const):
            if operand.value:
                return TRUE
            continue
        if operand in seen:
            continue
        seen.add(operand)
        flat.append(operand)
    for operand in flat:
        if not_(operand) in seen:
            return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return OrExpr(tuple(flat))


def xor(*operands: BoolExpr) -> BoolExpr:
    """Exclusive-or with constant folding and pair cancellation."""
    parity = False
    counts: Dict[BoolExpr, int] = {}
    order = []
    for operand in _flatten(XorExpr, operands):
        if isinstance(operand, Const):
            parity ^= operand.value
            continue
        if operand not in counts:
            counts[operand] = 0
            order.append(operand)
        counts[operand] += 1
    flat = [operand for operand in order if counts[operand] % 2 == 1]
    if not flat:
        return const(parity)
    expr: BoolExpr
    if len(flat) == 1:
        expr = flat[0]
    else:
        expr = XorExpr(tuple(flat))
    return not_(expr) if parity else expr


def implies(antecedent: BoolExpr, consequent: BoolExpr) -> BoolExpr:
    """Implication ``antecedent -> consequent`` as ``!a | b``."""
    return or_(not_(antecedent), consequent)


def iff(left: BoolExpr, right: BoolExpr) -> BoolExpr:
    """Biconditional ``left <-> right``."""
    return or_(and_(left, right), and_(not_(left), not_(right)))


def mux(select: BoolExpr, when_true: BoolExpr, when_false: BoolExpr) -> BoolExpr:
    """Two-way multiplexer ``select ? when_true : when_false``."""
    return or_(and_(select, when_true), and_(not_(select), when_false))


def all_assignments(names: Sequence[str]) -> Iterator[Dict[str, bool]]:
    """Iterate over all ``2**len(names)`` assignments in a stable order."""
    names = list(names)
    count = len(names)
    for bits in range(1 << count):
        yield {names[i]: bool((bits >> (count - 1 - i)) & 1) for i in range(count)}


def truth_table(expr: BoolExpr, names: Sequence[str] | None = None) -> Dict[Tuple[bool, ...], bool]:
    """Return the full truth table of ``expr`` keyed by input tuples."""
    if names is None:
        names = sorted(expr.variables())
    table = {}
    for assignment in all_assignments(list(names)):
        key = tuple(assignment[name] for name in names)
        table[key] = expr.evaluate(assignment)
    return table


# -- decision procedures ------------------------------------------------------
#
# The module-level predicates route through the active propositional backend
# (:mod:`repro.engines.prop`): truth-table enumeration for small supports,
# BDDs or SAT beyond.  The ``enumerate_*`` functions are the exhaustive
# reference implementations; the ``table`` backend delegates to them.


def enumerate_equivalent(left: BoolExpr, right: BoolExpr) -> bool:
    """Semantic equivalence by exhaustive evaluation over the joint support."""
    names = sorted(left.variables() | right.variables())
    return all(
        left.evaluate(assignment) == right.evaluate(assignment)
        for assignment in all_assignments(names)
    )


def enumerate_is_tautology(expr: BoolExpr) -> bool:
    """True when the expression evaluates to true under every assignment."""
    names = sorted(expr.variables())
    return all(expr.evaluate(assignment) for assignment in all_assignments(names))


def enumerate_is_contradiction(expr: BoolExpr) -> bool:
    """True when the expression evaluates to false under every assignment."""
    names = sorted(expr.variables())
    return not any(expr.evaluate(assignment) for assignment in all_assignments(names))


def expr_equivalent(left: BoolExpr, right: BoolExpr) -> bool:
    """Semantic equivalence, decided by the active propositional backend."""
    from ..engines.prop import active_prop_backend

    return active_prop_backend().equivalent(left, right)


def is_tautology(expr: BoolExpr) -> bool:
    """Validity, decided by the active propositional backend."""
    from ..engines.prop import active_prop_backend

    return active_prop_backend().is_tautology(expr)


def is_contradiction(expr: BoolExpr) -> bool:
    """Unsatisfiability, decided by the active propositional backend."""
    from ..engines.prop import active_prop_backend

    return not active_prop_backend().is_sat(expr)


def minterms(expr: BoolExpr, names: Sequence[str] | None = None) -> Iterator[Dict[str, bool]]:
    """Yield every satisfying assignment over ``names`` (defaults to support)."""
    if names is None:
        names = sorted(expr.variables())
    for assignment in all_assignments(list(names)):
        if expr.evaluate(assignment):
            yield assignment
