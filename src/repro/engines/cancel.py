"""Cooperative cancellation for racing coverage engines.

The portfolio engine (:mod:`repro.engines.portfolio`) runs the explicit,
bounded and symbolic engines concurrently and wants the losers to stop as
soon as one of them produces a decisive verdict.  Python threads cannot be
killed, so cancellation is *cooperative*: the racing thread installs a
:class:`CancelToken` (thread-local, via :func:`using_cancel_token`) and the
long-running search loops — Kripke enumeration, product construction, the
CDCL decision loop, the BMC bound ladder, the symbolic fixpoints — call
:func:`check_cancelled` at their loop heads.  When the token has been
cancelled the call raises :class:`Cancelled`, unwinding the losing engine
promptly.

A thread with no installed token pays one thread-local attribute read per
poll and never raises — every existing single-engine entry point is
unaffected.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "Cancelled",
    "CancelToken",
    "active_cancel_token",
    "using_cancel_token",
    "check_cancelled",
]


class Cancelled(Exception):
    """Raised inside a search loop whose cancel token has been triggered."""


class CancelToken:
    """A shared flag the race winner sets to stop the losing engines."""

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


_LOCAL = threading.local()


def active_cancel_token() -> Optional[CancelToken]:
    """The token installed for the current thread (``None`` when absent)."""
    return getattr(_LOCAL, "token", None)


@contextmanager
def using_cancel_token(token: Optional[CancelToken]) -> Iterator[Optional[CancelToken]]:
    """Install ``token`` as the current thread's cancel token."""
    previous = getattr(_LOCAL, "token", None)
    _LOCAL.token = token
    try:
        yield token
    finally:
        _LOCAL.token = previous


def check_cancelled() -> None:
    """Raise :class:`Cancelled` when the current thread's token is set."""
    token = getattr(_LOCAL, "token", None)
    if token is not None and token.cancelled:
        raise Cancelled()
