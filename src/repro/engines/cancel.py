"""Cooperative cancellation for racing coverage engines.

The portfolio engine (:mod:`repro.engines.portfolio`) runs the explicit,
bounded and symbolic engines concurrently and wants the losers to stop as
soon as one of them produces a decisive verdict.  Python threads cannot be
killed, so cancellation is *cooperative*: the racing thread installs a
:class:`CancelToken` (thread-local, via :func:`using_cancel_token`) and the
long-running search loops — Kripke enumeration, product construction, the
CDCL decision loop, the BMC bound ladder, the symbolic fixpoints — call
:func:`check_cancelled` at their loop heads.  When the token has been
cancelled the call raises :class:`Cancelled`, unwinding the losing engine
promptly.

A thread with no installed token pays one thread-local attribute read per
poll and never raises — every existing single-engine entry point is
unaffected.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "Cancelled",
    "CancelToken",
    "active_cancel_token",
    "using_cancel_token",
    "check_cancelled",
]


class Cancelled(Exception):
    """Raised inside a search loop whose cancel token has been triggered."""


class CancelToken:
    """A shared flag the race winner sets to stop the losing engines.

    The token also keeps per-member **poll counters**: every
    :func:`check_cancelled` from a thread registered with a member name
    (``using_cancel_token(token, member="bmc")``) bumps ``polls[member]``,
    and — once the token is cancelled — ``polls_after_cancel[member]``.  The
    portfolio reports these as each loser's progress at cancellation, and
    the counters make cooperative shutdown *testable*: a well-behaved search
    loop observes the cancel within a handful of polls, so
    ``polls_after_cancel`` stays tiny.

    Counter updates are plain dict mutations without a lock: each member
    name is only ever written by its own racing thread, and single-key dict
    operations are atomic under the GIL — a lock here would tax the hottest
    loops (CDCL decisions, product expansion) for nothing.
    """

    __slots__ = ("_event", "polls", "polls_after_cancel")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.polls: dict = {}
        self.polls_after_cancel: dict = {}

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def note_poll(self, member: str) -> None:
        """Record one cancellation poll by ``member``'s search loop."""
        self.polls[member] = self.polls.get(member, 0) + 1
        if self._event.is_set():
            self.polls_after_cancel[member] = (
                self.polls_after_cancel.get(member, 0) + 1
            )

    def progress_snapshot(self) -> dict:
        """Member → {polls, polls_after_cancel} at the time of the call."""
        return {
            member: {
                "polls": count,
                "polls_after_cancel": self.polls_after_cancel.get(member, 0),
            }
            for member, count in sorted(self.polls.items())
        }


_LOCAL = threading.local()


def active_cancel_token() -> Optional[CancelToken]:
    """The token installed for the current thread (``None`` when absent)."""
    return getattr(_LOCAL, "token", None)


@contextmanager
def using_cancel_token(
    token: Optional[CancelToken], member: Optional[str] = None
) -> Iterator[Optional[CancelToken]]:
    """Install ``token`` as the current thread's cancel token.

    ``member`` names this thread in the token's poll counters (the portfolio
    passes the racing engine's name); unnamed threads poll without counting.
    """
    previous = getattr(_LOCAL, "token", None)
    previous_member = getattr(_LOCAL, "member", None)
    _LOCAL.token = token
    _LOCAL.member = member
    try:
        yield token
    finally:
        _LOCAL.token = previous
        _LOCAL.member = previous_member


def check_cancelled() -> None:
    """Raise :class:`Cancelled` when the current thread's token is set."""
    token = getattr(_LOCAL, "token", None)
    if token is None:
        return
    member = getattr(_LOCAL, "member", None)
    if member is not None:
        token.note_poll(member)
    if token.cancelled:
        raise Cancelled()
