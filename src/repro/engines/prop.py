"""Propositional decision backends.

One protocol — :class:`PropBackend` — with three interchangeable
implementations plus a size-directed ``auto`` policy:

``table``
    Exhaustive truth-table enumeration (the original reference semantics of
    :mod:`repro.logic.boolexpr`).  Exact and simple, but ``O(2^n)``.
``bdd``
    Reduced ordered BDDs via :class:`~repro.logic.bdd.BDDManager`.  Validity
    and equivalence become root-pointer comparisons after construction.
``sat``
    Tseitin encoding (:mod:`repro.sat.tseitin`) plus the CDCL solver
    (:mod:`repro.sat.solver`).  Equivalence is an UNSAT check on the XOR of
    the two sides.
``auto``
    Picks by support size: enumeration below :data:`TABLE_CUTOFF` variables,
    BDDs up to :data:`BDD_CUTOFF`, SAT beyond.

The module also owns the process-wide *active* backend that the module-level
predicates of :mod:`repro.logic.boolexpr` (``is_tautology`` /
``expr_equivalent`` / ``is_contradiction``) dispatch through; use
:func:`set_prop_backend` or the :func:`using_prop_backend` context manager to
change it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Protocol, Union, runtime_checkable

from ..logic.boolexpr import (
    BoolExpr,
    all_assignments,
    enumerate_equivalent,
    enumerate_is_contradiction,
    enumerate_is_tautology,
    not_,
    xor,
)

__all__ = [
    "PropBackend",
    "TruthTableBackend",
    "BddBackend",
    "SatBackend",
    "AutoBackend",
    "TABLE_CUTOFF",
    "BDD_CUTOFF",
    "register_prop_backend",
    "get_prop_backend",
    "prop_backend_names",
    "active_prop_backend",
    "set_prop_backend",
    "using_prop_backend",
]

Assignment = Dict[str, bool]

#: ``auto`` enumerates truth tables only below this many support variables.
TABLE_CUTOFF = 8
#: ``auto`` uses BDDs up to this many support variables, SAT beyond.
BDD_CUTOFF = 24


@runtime_checkable
class PropBackend(Protocol):
    """A decision procedure for propositional queries over :class:`BoolExpr`."""

    name: str

    def is_sat(self, expr: BoolExpr) -> bool:
        """Does some assignment satisfy ``expr``?"""
        ...

    def is_tautology(self, expr: BoolExpr) -> bool:
        """Does every assignment satisfy ``expr``?"""
        ...

    def equivalent(self, left: BoolExpr, right: BoolExpr) -> bool:
        """Do ``left`` and ``right`` agree under every assignment?"""
        ...

    def model(self, expr: BoolExpr) -> Optional[Assignment]:
        """A satisfying assignment over the support of ``expr``, or ``None``."""
        ...


class _BackendBase:
    """Default derivations shared by the concrete backends."""

    name = "?"

    def _count_query(self) -> None:
        from ..obs import metrics

        metrics().inc(f"prop.{self.name}.queries")

    def is_sat(self, expr: BoolExpr) -> bool:
        raise NotImplementedError

    def model(self, expr: BoolExpr) -> Optional[Assignment]:
        raise NotImplementedError

    def is_tautology(self, expr: BoolExpr) -> bool:
        return not self.is_sat(not_(expr))

    def equivalent(self, left: BoolExpr, right: BoolExpr) -> bool:
        if left is right:
            return True
        return not self.is_sat(xor(left, right))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class TruthTableBackend(_BackendBase):
    """Reference backend: exhaustive enumeration over the support."""

    name = "table"

    def is_sat(self, expr: BoolExpr) -> bool:
        self._count_query()
        return not enumerate_is_contradiction(expr)

    def is_tautology(self, expr: BoolExpr) -> bool:
        self._count_query()
        return enumerate_is_tautology(expr)

    def equivalent(self, left: BoolExpr, right: BoolExpr) -> bool:
        if left is right:
            return True
        self._count_query()
        return enumerate_equivalent(left, right)

    def model(self, expr: BoolExpr) -> Optional[Assignment]:
        self._count_query()
        for assignment in all_assignments(sorted(expr.variables())):
            if expr.evaluate(assignment):
                return assignment
        return None


class BddBackend(_BackendBase):
    """Canonical backend: build an ROBDD and inspect the root."""

    name = "bdd"

    def _build(self, expr: BoolExpr):
        from ..logic.bdd import BDDManager

        self._count_query()
        manager = BDDManager(sorted(expr.variables()))
        return manager.from_expr(expr)

    def is_sat(self, expr: BoolExpr) -> bool:
        return not self._build(expr).is_false()

    def is_tautology(self, expr: BoolExpr) -> bool:
        return self._build(expr).is_true()

    def equivalent(self, left: BoolExpr, right: BoolExpr) -> bool:
        if left is right:
            return True
        from ..logic.bdd import BDDManager

        self._count_query()
        manager = BDDManager(sorted(left.variables() | right.variables()))
        return manager.from_expr(left).root == manager.from_expr(right).root

    def model(self, expr: BoolExpr) -> Optional[Assignment]:
        node = self._build(expr)
        for cube in node.satisfying_cubes():
            assignment = {name: False for name in expr.variables()}
            assignment.update(dict(cube))
            return assignment
        return None


class SatBackend(_BackendBase):
    """Refutation backend: Tseitin encoding + CDCL search."""

    name = "sat"

    def _solve(self, expr: BoolExpr):
        from ..sat.solver import solve
        from ..sat.tseitin import encode_constraint

        self._count_query()
        return solve(encode_constraint(expr))

    def is_sat(self, expr: BoolExpr) -> bool:
        return self._solve(expr).satisfiable

    def model(self, expr: BoolExpr) -> Optional[Assignment]:
        result = self._solve(expr)
        if not result.satisfiable:
            return None
        return {name: result.value(name) for name in expr.variables()}


class AutoBackend(_BackendBase):
    """Support-size policy: table for tiny, BDD for medium, SAT for large.

    The cutoffs are per-instance so callers can tune them; the defaults keep
    the exponential reference sweep strictly below :data:`TABLE_CUTOFF`
    variables.
    """

    name = "auto"

    def __init__(
        self,
        *,
        table_cutoff: int = TABLE_CUTOFF,
        bdd_cutoff: int = BDD_CUTOFF,
    ):
        self.table_cutoff = table_cutoff
        self.bdd_cutoff = bdd_cutoff
        self._table = TruthTableBackend()
        self._bdd = BddBackend()
        self._sat = SatBackend()

    def pick(self, variable_count: int) -> PropBackend:
        """The delegate backend for a query over ``variable_count`` variables."""
        if variable_count < self.table_cutoff:
            return self._table
        if variable_count <= self.bdd_cutoff:
            return self._bdd
        return self._sat

    def is_sat(self, expr: BoolExpr) -> bool:
        return self.pick(len(expr.variables())).is_sat(expr)

    def is_tautology(self, expr: BoolExpr) -> bool:
        return self.pick(len(expr.variables())).is_tautology(expr)

    def equivalent(self, left: BoolExpr, right: BoolExpr) -> bool:
        if left is right:
            return True
        joint = len(left.variables() | right.variables())
        return self.pick(joint).equivalent(left, right)

    def model(self, expr: BoolExpr) -> Optional[Assignment]:
        return self.pick(len(expr.variables())).model(expr)


# -- registry -----------------------------------------------------------------

_FACTORIES: Dict[str, Callable[[], PropBackend]] = {}
_ALIASES = {
    "table": "table",
    "truth-table": "table",
    "truthtable": "table",
    "tt": "table",
    "bdd": "bdd",
    "sat": "sat",
    "auto": "auto",
}


def register_prop_backend(name: str, factory: Callable[[], PropBackend]) -> None:
    """Register a backend factory under ``name`` (later lookups instantiate it)."""
    _FACTORIES[name] = factory
    _ALIASES[name] = name


register_prop_backend("table", TruthTableBackend)
register_prop_backend("bdd", BddBackend)
register_prop_backend("sat", SatBackend)
register_prop_backend("auto", AutoBackend)


def prop_backend_names() -> tuple:
    """The canonical registered backend names."""
    return tuple(sorted(_FACTORIES))


def get_prop_backend(name: Union[str, PropBackend]) -> PropBackend:
    """Resolve a backend by name (aliases accepted) or pass an instance through."""
    if not isinstance(name, str):
        return name
    canonical = _ALIASES.get(name.lower())
    if canonical is None:
        known = ", ".join(prop_backend_names())
        raise KeyError(f"unknown propositional backend {name!r} (known: {known})")
    return _FACTORIES[canonical]()


# -- the active backend -------------------------------------------------------

_active: PropBackend = AutoBackend()


def active_prop_backend() -> PropBackend:
    """The backend the module-level boolexpr predicates currently dispatch to."""
    return _active


def set_prop_backend(backend: Union[str, PropBackend]) -> PropBackend:
    """Install a new active backend; returns the previous one."""
    global _active
    previous = _active
    _active = get_prop_backend(backend)
    return previous


@contextmanager
def using_prop_backend(backend: Union[str, PropBackend, None]) -> Iterator[PropBackend]:
    """Temporarily switch the active backend (``None`` leaves it unchanged)."""
    if backend is None:
        yield _active
        return
    previous = set_prop_backend(backend)
    try:
        yield _active
    finally:
        set_prop_backend(previous)
