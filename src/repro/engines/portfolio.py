"""The racing portfolio coverage engine (``--engine portfolio`` / ``race``).

No single engine dominates: the bounded SAT engine finds shallow witnesses
fastest, the explicit engine wins on narrow products, the symbolic engine on
wide ones — and which regime a query falls in is hard to predict.  The
portfolio engine answers each query by running all three members
*concurrently* on the same :class:`~repro.problem.CompiledProblem` (one
compile, three consumers) and returning the first **decisive** verdict:

* a *satisfiable* result from any member — the witness run is concrete and
  definitive regardless of who found it;
* an *unsatisfiable* result from a complete member (explicit / symbolic) — a
  full proof of coverage.

An unsatisfiable verdict from the bounded engine is *not* decisive (it only
holds up to the bound); it is kept as a fallback and reported — with
``complete=False`` — only when every complete member fails.

Losing members are stopped through cooperative cancellation
(:mod:`repro.engines.cancel`): the winner trips the shared token and the
search loops of the losers (Kripke enumeration, product construction, CDCL
decisions, BMC bounds, symbolic images) unwind at their next poll.  When
threads are unavailable (``parallel=False`` or thread creation fails) the
members run as a **serial ladder** in order, first decisive verdict wins.

The winning member is recorded on the result (``winner``) and flows into
:class:`~repro.engines.coverage.EngineVerdict`, suite shard rows, cached
payloads and the benchmark trajectories.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..ltl.traces import LassoTrace
from ..obs import metrics, span
from .cancel import CancelToken, Cancelled, using_cancel_token
from .coverage import CoverageEngine, get_engine, register_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..problem import CompiledProblem

__all__ = ["PortfolioEngine", "PortfolioResult", "DEFAULT_MEMBERS"]

DEFAULT_MEMBERS: Tuple[str, ...] = ("explicit", "bmc", "symbolic")


class _ThreadsUnavailable(RuntimeError):
    """Raised when worker threads cannot be started (triggers the ladder)."""


@dataclass
class PortfolioResult:
    """Outcome of one portfolio race.

    Duck-type compatible with the other engines' run results
    (``satisfiable`` / ``witness`` / ``bound`` / ``statistics``), plus the
    race-specific fields: ``winner`` names the member whose verdict was used
    and ``complete`` records that verdict's strength (``False`` only when the
    bounded fallback was the sole survivor).
    """

    satisfiable: bool
    winner: str
    complete: bool
    witness: Optional[LassoTrace] = None
    bound: Optional[int] = None
    statistics: object = None
    elapsed_seconds: float = 0.0
    #: member name → outcome ("won" / "sat" / "unsat-bounded" / "cancelled" /
    #: "error: ..."), for reports and benchmarks.
    outcomes: Optional[dict] = None
    #: member name → {polls, polls_after_cancel}: how often each racing
    #: search loop polled the cancel token, and how long past cancellation it
    #: kept polling.  The observable evidence that losers stopped promptly.
    progress: Optional[dict] = None
    #: scheduler record: at least {"mode": "race" | "ladder"} so downstream
    #: consumers (suite rows, cache payloads, the sched trainer) can tell a
    #: true concurrent race from the serial fallback.
    sched: Optional[dict] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.satisfiable


class PortfolioEngine(CoverageEngine):
    """Race the explicit / bmc / symbolic engines per query.

    ``members`` selects the racing engines (base-engine names; nesting a
    portfolio is rejected).  ``parallel=False`` forces the serial-ladder
    fallback, which is also used automatically when a worker thread cannot
    be started.
    """

    name = "portfolio"
    # The race is complete whenever a complete member wins; only the bounded
    # fallback path is not, and the result records that per-verdict.
    complete = True

    def __init__(
        self,
        *,
        max_bound: int = 12,
        slicing="auto",
        members: Sequence[str] = DEFAULT_MEMBERS,
        parallel: bool = True,
        stagger_seconds: float = 0.0,
    ):
        super().__init__(slicing=slicing, max_bound=max_bound)
        if not members:
            raise ValueError("portfolio needs at least one member engine")
        if any(name in ("portfolio", "race", "auto", "learned") for name in members):
            raise ValueError("portfolio members must be base engines")
        if stagger_seconds < 0:
            raise ValueError("stagger_seconds must be >= 0")
        self.members = tuple(members)
        self.parallel = parallel
        #: Delay between member thread starts.  0 = classic simultaneous race;
        #: the auto engine staggers its fallback race so the predicted winner
        #: gets a head start and the runner-up mostly just insures against a
        #: misprediction.
        self.stagger_seconds = stagger_seconds

    def _cache_bound(self) -> Optional[int]:
        # The bounded member's reach is part of the race's identity: its
        # fallback verdict (and which witnesses it can find first) depends on
        # the bound.
        return self.max_bound

    def _cache_backend(self) -> str:
        # The member set is part of the race's identity too: a bmc-only
        # portfolio caches bounded (complete=False) verdicts that must never
        # shadow the full three-member race's complete proofs.
        return super()._cache_backend() + "|members=" + ",".join(self.members)

    def _member_engines(self) -> List[CoverageEngine]:
        return [
            get_engine(name, max_bound=self.max_bound, slicing=self.slicing)
            for name in self.members
        ]

    @staticmethod
    def _decisive(engine: CoverageEngine, result) -> bool:
        """A verdict that ends the race: any witness, or a complete proof."""
        return bool(result.satisfiable) or engine.complete

    def _find_run(self, problem: "CompiledProblem"):
        start = time.perf_counter()
        engines = self._member_engines()
        if self.parallel and len(engines) > 1:
            try:
                return self._race(problem, engines, start)
            except _ThreadsUnavailable:  # pragma: no cover - thread creation failed
                pass
        return self._ladder(problem, engines, start)

    # -- parallel race -------------------------------------------------------
    def _race(self, problem: "CompiledProblem", engines, start: float):
        token = CancelToken()
        decided = threading.Event()
        lock = threading.Lock()
        finished: List[Tuple[str, object]] = []  # (name, result) in completion order
        outcomes: dict = {}

        def work(engine: CoverageEngine) -> None:
            try:
                with using_cancel_token(token, member=engine.name):
                    # Members run their own find_run, so the shared result
                    # cache is consulted — and populated — under each
                    # member's own key.
                    result = engine.find_run(problem)
            except Cancelled:
                with lock:
                    outcomes.setdefault(engine.name, "cancelled")
            except Exception as exc:  # noqa: BLE001 - losers must not kill the race
                with lock:
                    outcomes.setdefault(engine.name, f"error: {type(exc).__name__}: {exc}")
            else:
                with lock:
                    finished.append((engine.name, result))
                    outcomes.setdefault(
                        engine.name, "sat" if result.satisfiable else
                        ("unsat" if engine.complete else "unsat-bounded")
                    )
                    if self._decisive(engine, result):
                        token.cancel()
                        decided.set()
            finally:
                with lock:
                    if len(outcomes) == len(engines):
                        decided.set()

        threads = [
            threading.Thread(target=work, args=(engine,), daemon=True, name=f"portfolio-{engine.name}")
            for engine in engines
        ]
        started: List[threading.Thread] = []
        try:
            try:
                for thread in threads:
                    thread.start()
                    started.append(thread)
                    # Stagger: give already-running members a head start; stop
                    # launching once one of them has already decided the race.
                    if self.stagger_seconds and thread is not threads[-1]:
                        if decided.wait(timeout=self.stagger_seconds):
                            break
            except RuntimeError as exc:  # pragma: no cover - thread creation failed
                # Only start() failures select the serial ladder; everything
                # else (including _settle's "every member failed") propagates.
                # Members already racing must be stopped first, or they would
                # keep running concurrently with the ladder.
                token.cancel()
                for thread in started:
                    thread.join(timeout=5.0)
                raise _ThreadsUnavailable(str(exc)) from exc
            # Interruptible wait (a suite shard watchdog may fire here).  When
            # a stagger skipped some members, `decided` is already set and the
            # skipped members never contribute an outcome.
            while not decided.wait(timeout=0.05):
                pass
        finally:
            token.cancel()
        for thread in started:
            thread.join(timeout=5.0)
        return self._settle(
            problem, engines, finished, outcomes, start,
            progress=token.progress_snapshot(), mode="race",
        )

    # -- serial ladder fallback ----------------------------------------------
    def _ladder(self, problem: "CompiledProblem", engines, start: float):
        finished: List[Tuple[str, object]] = []
        outcomes: dict = {}
        for engine in engines:
            try:
                result = engine.find_run(problem)
            except Exception as exc:  # noqa: BLE001 - climb to the next rung
                outcomes[engine.name] = f"error: {type(exc).__name__}: {exc}"
                continue
            finished.append((engine.name, result))
            outcomes[engine.name] = "sat" if result.satisfiable else (
                "unsat" if engine.complete else "unsat-bounded"
            )
            if self._decisive(engine, result):
                break
        return self._settle(problem, engines, finished, outcomes, start, mode="ladder")

    # -- verdict selection ----------------------------------------------------
    def _settle(self, problem, engines, finished, outcomes, start: float,
                progress=None, mode: str = "race"):
        elapsed = time.perf_counter() - start
        by_name = {engine.name: engine for engine in engines}
        winner: Optional[Tuple[str, object]] = None
        for name, result in finished:
            if self._decisive(by_name[name], result):
                winner = (name, result)
                break
        bounded_fallback = winner is None and bool(finished)
        if winner is None and finished:
            # Every complete member failed; fall back to the (first) bounded
            # verdict rather than reporting nothing.
            winner = finished[0]
        if winner is None:
            errors = "; ".join(f"{name}={text}" for name, text in sorted(outcomes.items()))
            raise RuntimeError(f"every portfolio member failed: {errors}")
        name, result = winner
        outcomes = dict(outcomes)
        outcomes[name] = "won"
        metrics().inc("portfolio.races")
        metrics().inc(f"portfolio.wins.{name}")
        features = problem.features(bound=self.max_bound)
        with span("portfolio_race", design=problem.source_name) as sp:
            sp.set(winner=name, mode=mode, features=features)
        return PortfolioResult(
            satisfiable=bool(result.satisfiable),
            winner=name,
            complete=bool(result.satisfiable) or not bounded_fallback,
            witness=result.witness,
            bound=getattr(result, "bound", None),
            statistics=getattr(result, "statistics", None),
            elapsed_seconds=elapsed,
            outcomes=outcomes,
            progress=progress,
            sched={"mode": mode},
        )


register_engine("portfolio", PortfolioEngine)
