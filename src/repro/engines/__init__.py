"""Unified decision-backend layer.

Every decision query of the pipeline funnels through one of two registries:

* **propositional backends** (:mod:`repro.engines.prop`) answer boolean
  validity / satisfiability / equivalence queries over
  :class:`~repro.logic.boolexpr.BoolExpr` — via truth-table enumeration,
  BDDs (:mod:`repro.logic.bdd`) or CDCL SAT (:mod:`repro.sat`), with an
  ``auto`` policy that picks by support size;
* **coverage engines** (:mod:`repro.engines.coverage`) answer the paper's
  primary coverage question (Theorem 1) — via the explicit-state
  product/nested-DFS engine (:mod:`repro.mc`), the bounded SAT engine
  (:mod:`repro.bmc`), the fully symbolic BDD fixpoint engine
  (:mod:`repro.mc.symbolic`), the racing portfolio
  (:mod:`repro.engines.portfolio`: all three concurrently with cooperative
  cancellation, first decisive verdict wins), or the learned scheduler
  (:mod:`repro.engines.auto`: a trained predictor picks the engine per
  query, racing only when unsure) — behind one
  ``check_primary(problem)`` interface.  Every engine consumes the compiled
  problem IR (:mod:`repro.problem`), so each query is cone-of-influence
  sliced and its automata are compiled once.

Both registries are string-keyed so the selection threads cleanly from the
CLI (``--engine`` / ``--prop-backend``) and from
:class:`~repro.core.coverage.CoverageOptions` down to the kernel.
"""

from .prop import (
    AutoBackend,
    BddBackend,
    PropBackend,
    SatBackend,
    TruthTableBackend,
    active_prop_backend,
    get_prop_backend,
    prop_backend_names,
    register_prop_backend,
    set_prop_backend,
    using_prop_backend,
)
from .cancel import CancelToken, Cancelled, check_cancelled, using_cancel_token
from .coverage import (
    BmcEngine,
    CoverageEngine,
    EngineVerdict,
    ExplicitEngine,
    engine_choices,
    engine_from_options,
    engine_names,
    get_engine,
    register_engine,
    unregister_engine,
)
from .portfolio import PortfolioEngine
from .symbolic import SymbolicEngine
from .auto import AutoEngine

__all__ = [
    "PropBackend",
    "TruthTableBackend",
    "BddBackend",
    "SatBackend",
    "AutoBackend",
    "get_prop_backend",
    "prop_backend_names",
    "register_prop_backend",
    "active_prop_backend",
    "set_prop_backend",
    "using_prop_backend",
    "CoverageEngine",
    "EngineVerdict",
    "ExplicitEngine",
    "BmcEngine",
    "SymbolicEngine",
    "PortfolioEngine",
    "AutoEngine",
    "get_engine",
    "engine_names",
    "engine_choices",
    "register_engine",
    "unregister_engine",
    "engine_from_options",
    "CancelToken",
    "Cancelled",
    "check_cancelled",
    "using_cancel_token",
]
