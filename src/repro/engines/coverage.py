"""Coverage engines: one interface over explicit-state MC, bounded SAT and BDDs.

Theorem 1 reduces the primary coverage question to one existential
model-checking query — "is there a run of the concrete modules satisfying
``!A`` and every RTL property?".  The repository ships three ways to answer it:

* the **explicit** engine — Kripke × Büchi product and nested DFS
  (:mod:`repro.mc.modelcheck`), complete on these finite designs;
* the **bmc** engine — time-frame unrolling + Tseitin + CDCL
  (:mod:`repro.bmc.engine`), refutation-complete: a witness is definitive,
  while "no witness" only holds up to the bound;
* the **symbolic** engine — BDD-encoded product and Emerson–Lei fair-SCC
  fixpoint (:mod:`repro.mc.symbolic`, registered by
  :mod:`repro.engines.symbolic`), complete like the explicit engine but
  scaling with BDD size instead of reachable-state count.

:class:`CoverageEngine` unifies them behind ``check_primary(problem)`` /
``find_run(module, formulas)`` / ``is_covered_with(problem, extra)``, and the
string registry (:func:`get_engine`) lets :mod:`repro.core` and the CLI pick
an engine by name.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from ..ltl.ast import Formula, Not
from ..ltl.traces import LassoTrace
from ..obs import PhaseAggregator, metrics, span

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a core import cycle
    from ..core.spec import CoverageProblem
    from ..problem import CompiledProblem
    from ..rtl.netlist import Module

__all__ = [
    "EngineVerdict",
    "CoverageEngine",
    "ExplicitEngine",
    "BmcEngine",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "engine_names",
    "engine_choices",
    "engine_from_options",
]


@dataclass
class EngineVerdict:
    """Engine-independent outcome of the primary coverage question.

    ``complete`` records the strength of a *covered* verdict: the explicit
    engine proves coverage outright, while BMC proves it only up to
    ``bound``.  A *not covered* verdict is definitive for every engine (the
    witness run is concrete).
    """

    problem_name: str
    engine: str
    covered: bool
    complete: bool
    witness: Optional[LassoTrace] = None
    elapsed_seconds: float = 0.0
    bound: Optional[int] = None
    statistics: object = None
    #: The member engine that produced the verdict (portfolio/auto runs only).
    winner: Optional[str] = None
    #: Per-query feature record of the compiled problem (coi_size, registers,
    #: automaton_states, bound, ...) — the learned-scheduler substrate.
    features: Optional[Dict[str, object]] = None
    #: Scheduler record (portfolio/auto runs only): race mode, predicted
    #: ranking, confidence, and whether the prediction hit.
    sched: Optional[Dict[str, object]] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.covered

    def summary(self) -> str:
        verdict = "covered" if self.covered else "NOT covered"
        qualifier = "" if self.complete or not self.covered else f" up to bound {self.bound}"
        engine = self.engine if not self.winner else f"{self.engine}/{self.winner}"
        return (
            f"{self.problem_name}: {verdict}{qualifier} "
            f"[{engine} engine, {self.elapsed_seconds:.3f} s]"
        )


def _query_formulas(
    problem: "CoverageProblem",
    architectural: Optional[Formula],
    extra: Sequence[Formula] = (),
) -> List[Formula]:
    target = architectural if architectural is not None else problem.architectural_conjunction()
    return [Not(target)] + problem.all_rtl_formulas() + list(extra)


class CoverageEngine:
    """Base class / protocol of the primary-coverage engines.

    ``slicing`` controls whether queries are compiled with cone-of-influence
    reduction (:mod:`repro.problem`): ``True`` always slices, ``False``
    never, and the default ``"auto"`` slices only when the cone drops a
    meaningful part of the module.  Threaded from ``CoverageOptions.slicing``
    / the CLI ``--no-slice`` flag.
    """

    name: str = "?"
    #: True when a "covered" verdict is a full proof rather than bounded.
    complete: bool = True

    def __init__(self, *, slicing="auto", max_bound: int = 12):
        self.slicing = slicing
        #: The bound a bounded search would run to.  Complete engines never
        #: use it to decide, but it is part of every engine's *feature
        #: record* (suite shard rows, cached payloads): the scheduler wants
        #: the configured bound on every training row, never ``None``.
        self.max_bound = max_bound

    def compile(
        self,
        module: "Module",
        formulas: Sequence[Formula],
        *,
        observe: Sequence[str] = (),
    ) -> "CompiledProblem":
        """Compile one query into the IR this engine consumes (memoized)."""
        from ..problem import compile_problem

        return compile_problem(
            module, formulas, observe=observe, slicing=self.slicing
        )

    def _as_problem(self, target, formulas, observe) -> "CompiledProblem":
        from ..problem import CompiledProblem

        if isinstance(target, CompiledProblem):
            return target
        if formulas is None:
            raise TypeError("find_run needs formulas unless given a CompiledProblem")
        return self.compile(target, formulas, observe=observe)

    def find_run(
        self,
        target,
        formulas: Optional[Sequence[Formula]] = None,
        *,
        observe: Sequence[str] = (),
    ):
        """Existential query: a run of the model satisfying every formula.

        ``target`` is either a raw :class:`~repro.rtl.netlist.Module` (with
        ``formulas``) — compiled here into a
        :class:`~repro.problem.CompiledProblem`, memoized — or an already
        compiled problem.  ``observe`` lists extra signals to keep in the
        slice and in witness traces (ignored when a compiled problem is
        passed).

        Returns an object with ``satisfiable`` and ``witness`` attributes
        (:class:`~repro.mc.modelcheck.ExistentialResult`,
        :class:`~repro.bmc.engine.BMCResult` or a replayed
        :class:`~repro.runner.cache.CachedRunResult`).

        When a result cache is active (:mod:`repro.runner.cache`), the query
        is fingerprinted — *sliced* module structure + formulas + free
        partition + engine + active propositional backend + bound — and
        decided queries are replayed instead of re-run.  Keying on the slice
        means structurally identical cones hit the cache across designs and
        across suite shards.  This is the "never re-answer a decided query"
        choke point: the primary question, witness enumeration and every
        closure check all pass through here.
        """
        problem = self._as_problem(target, formulas, observe)

        from ..runner.cache import active_result_cache

        cache = active_result_cache()
        if cache is None:
            return self._instrumented_run(problem)

        from ..runner.cache import CachedRunResult, encode_run_result, query_key

        key = query_key(
            "engine-run",
            problem.module,
            problem.formulas,
            engine=self.name,
            backend=self._cache_backend(),
            bound=self._cache_bound(),
            extra=problem.cache_extra(),
        )
        payload = cache.get(key)
        if payload is not None:
            return CachedRunResult.from_payload(payload)
        # Freshly decided queries are stored with their feature record and
        # per-phase timing breakdown: the cache doubles as the training log
        # the learned portfolio scheduler reads.
        with PhaseAggregator() as phases:
            result = self._instrumented_run(problem)
        payload = encode_run_result(result)
        payload["features"] = problem.features(bound=self.max_bound)
        payload["timings"] = phases.timings()
        cache.put(key, payload)
        return result

    def _instrumented_run(self, problem: "CompiledProblem"):
        """Run the engine-specific search under an ``engine_run`` span."""
        with span(
            "engine_run", engine=self.name, design=problem.source_name
        ) as sp:
            result = self._find_run(problem)
            sp.set(satisfiable=bool(result.satisfiable))
        metrics().inc(f"engine.{self.name}.runs")
        return result

    def _cache_bound(self) -> Optional[int]:
        """The bound component of this engine's cache keys (``None`` = complete)."""
        return None

    def _cache_backend(self) -> str:
        """The backend component of this engine's cache keys.

        Engines whose search routes boolean queries through the active
        propositional backend key on its name, so a result decided one way
        can never shadow another.  Engines that never consult the backend
        (the symbolic engine owns its BDD manager outright) override this
        with a constant so their cached results replay under every
        ``--prop-backend`` setting.
        """
        from .prop import active_prop_backend

        return active_prop_backend().name

    def _find_run(self, problem: "CompiledProblem"):
        """Engine-specific uncached search (overridden by each engine)."""
        raise NotImplementedError

    def _result_complete(self, result) -> bool:
        """Completeness of one search result (portfolio results carry their own)."""
        complete = getattr(result, "complete", None)
        return self.complete if complete is None else bool(complete)

    def check_primary(
        self,
        problem: "CoverageProblem",
        *,
        architectural: Optional[Formula] = None,
        observe: Sequence[str] = (),
    ) -> EngineVerdict:
        """Theorem 1: does the RTL specification cover the intent?"""
        problem.validate()
        start = time.perf_counter()
        compiled = self.compile(
            problem.composed_module(),
            _query_formulas(problem, architectural),
            observe=observe,
        )
        result = self.find_run(compiled)
        elapsed = time.perf_counter() - start
        return EngineVerdict(
            problem_name=problem.name,
            engine=self.name,
            covered=not result.satisfiable,
            # A refutation (concrete witness) is definitive for every engine;
            # only a *covered* verdict inherits the result's boundedness.
            complete=self._result_complete(result) or result.satisfiable,
            witness=result.witness,
            elapsed_seconds=elapsed,
            bound=getattr(result, "bound", None),
            statistics=getattr(result, "statistics", None),
            winner=getattr(result, "winner", None),
            features=compiled.features(bound=self.max_bound),
            sched=getattr(result, "sched", None),
        )

    def is_covered_with(
        self,
        problem: "CoverageProblem",
        extra_properties: Sequence[Formula],
        *,
        architectural: Optional[Formula] = None,
    ) -> bool:
        """Theorem 1 with candidate gap properties added to the RTL spec."""
        result = self.find_run(
            problem.composed_module(),
            _query_formulas(problem, architectural, extra_properties),
        )
        return not result.satisfiable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class ExplicitEngine(CoverageEngine):
    """Explicit-state product + nested-DFS engine (complete)."""

    name = "explicit"
    complete = True

    def _find_run(self, problem: "CompiledProblem"):
        from ..mc.modelcheck import find_run

        return find_run(
            problem.module,
            problem.formulas,
            extra_free=problem.free_signals,
            automata=problem.automata,
        )


class BmcEngine(CoverageEngine):
    """Bounded model checking engine (complete for refutation only).

    The engine pools incremental :class:`~repro.bmc.incremental.BMCSession`
    objects per (slice structure, free signals): spec conjuncts that share a
    slice — the common case, since a coverage query asks many conjuncts about
    one cone of influence — reuse one persistent solver, its accumulated
    unrolling, and its learned clauses.  Sessions are checked out exclusively
    (popped under a lock) so concurrent queries on one engine instance are
    safe; a concurrent query simply starts a fresh session.
    """

    name = "bmc"
    complete = False

    #: Upper bound on pooled sessions per engine instance; oldest evicted.
    _SESSION_POOL_LIMIT = 8

    def __init__(self, *, max_bound: int = 12, slicing="auto", incremental: bool = True):
        super().__init__(slicing=slicing, max_bound=max_bound)
        self.incremental = incremental
        self._sessions: Dict[tuple, object] = {}
        self._session_lock = threading.Lock()

    def _cache_bound(self) -> Optional[int]:
        return self.max_bound

    def _find_run(self, problem: "CompiledProblem"):
        from ..bmc.engine import bmc_free_atoms, find_run_bmc
        from ..runner.cache import module_fingerprint

        # The engine-level wrapper already caches this query under its own
        # key; disable the raw-search layer so each decision is fingerprinted
        # and persisted once.
        if not self.incremental:
            return find_run_bmc(
                problem.module,
                problem.formulas,
                max_bound=self.max_bound,
                use_result_cache=False,
                extra_free=problem.free_signals,
                incremental=False,
            )
        from ..bmc.incremental import BMCSession

        free_atoms = bmc_free_atoms(
            problem.module, problem.formulas, problem.free_signals
        )
        key = (module_fingerprint(problem.module), tuple(free_atoms))
        with self._session_lock:
            session = self._sessions.pop(key, None)
        if session is None or not session.compatible_with(problem.module, free_atoms):
            session = BMCSession(problem.module, free_atoms)
        try:
            return find_run_bmc(
                problem.module,
                problem.formulas,
                max_bound=self.max_bound,
                use_result_cache=False,
                extra_free=problem.free_signals,
                session=session,
            )
        finally:
            # Repool even after a cancelled race: the solver backtracks to
            # level 0 on its next call, so a half-run search is harmless.
            with self._session_lock:
                self._sessions[key] = session
                while len(self._sessions) > self._SESSION_POOL_LIMIT:
                    self._sessions.pop(next(iter(self._sessions)))


# -- registry -----------------------------------------------------------------

_ENGINES: Dict[str, Callable[..., CoverageEngine]] = {}
_ALIASES = {
    "explicit": "explicit",
    "mc": "explicit",
    "nested-dfs": "explicit",
    "bmc": "bmc",
    # The symbolic and portfolio engines register themselves from
    # repro.engines.symbolic / repro.engines.portfolio; these aliases resolve
    # once the package __init__ has imported them.
    "sym": "symbolic",
    "bdd-fixpoint": "symbolic",
    "race": "portfolio",
    "learned": "auto",
}


def register_engine(name: str, factory: Callable[..., CoverageEngine]) -> None:
    """Register an engine factory; keyword arguments pass through lookups."""
    _ENGINES[name] = factory
    _ALIASES[name] = name


def unregister_engine(name: str) -> None:
    """Remove a plugin-registered engine again (test/teardown hook).

    Built-in engines can be removed too — the registry does not distinguish —
    so callers should only unregister what they registered.  Unknown names
    are ignored.
    """
    _ENGINES.pop(name, None)
    if _ALIASES.get(name) == name:
        _ALIASES.pop(name, None)


register_engine("explicit", ExplicitEngine)
register_engine("bmc", BmcEngine)


def engine_names() -> tuple:
    """The canonical registered engine names."""
    return tuple(sorted(_ENGINES))


def engine_choices() -> tuple:
    """Every accepted engine spelling: canonical names plus aliases."""
    return tuple(sorted(set(_ALIASES) | set(_ENGINES)))


def get_engine(name: str, **kwargs) -> CoverageEngine:
    """Instantiate an engine by name (``explicit`` / ``bmc``, aliases accepted).

    Keyword arguments are forwarded to the factory *filtered by its
    signature*, so generic call sites can pass the whole tuning set
    (``get_engine(options.engine, max_bound=options.bmc_max_bound)``) and each
    engine picks up only the knobs it understands.
    """
    canonical = _ALIASES.get(name.lower()) if isinstance(name, str) else None
    if canonical is None:
        known = ", ".join(engine_names())
        raise KeyError(f"unknown coverage engine {name!r} (known: {known})")
    factory = _ENGINES[canonical]
    if kwargs:
        import inspect

        parameters = inspect.signature(factory).parameters
        if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
            return factory(**kwargs)
        return factory(**{k: v for k, v in kwargs.items() if k in parameters})
    return factory()


def engine_from_options(options) -> CoverageEngine:
    """Resolve the engine selected by a :class:`CoverageOptions`-like object.

    Reads the ``engine``, ``bmc_max_bound`` and ``slicing`` attributes
    (duck-typed so the core layer never has to import this module at
    class-definition time) — any registered engine name (``explicit`` /
    ``bmc`` / ``symbolic`` / ``portfolio``) is accepted; ``None`` selects the
    default explicit engine.
    """
    if options is None:
        return get_engine("explicit")
    return get_engine(
        getattr(options, "engine", "explicit"),
        max_bound=getattr(options, "bmc_max_bound", 12),
        slicing=getattr(options, "slicing", "auto"),
        model_path=getattr(options, "sched_model", None),
        bdd_reorder=getattr(options, "bdd_reorder", False),
    )
