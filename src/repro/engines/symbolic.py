"""The fully symbolic (BDD fixpoint) coverage engine.

Third leg of the engine registry: where the **explicit** engine enumerates
the product state space and the **bmc** engine unrolls it into SAT, this
engine represents the Kripke structure, the property automata and their
product as BDDs over interleaved current/next variable pairs and decides the
primary coverage question with an Emerson–Lei fair-SCC fixpoint
(:mod:`repro.mc.symbolic`).

Verdict strength matches the explicit engine — ``complete = True`` in both
directions: a *covered* verdict is a full fixpoint proof that no run
satisfies ``!A & R``, and a *not covered* verdict carries a concrete lasso
witness extracted from the symbolic fair cycle and replayed on the cycle
simulator before it is reported.  The trade-off is structural instead:
image computation scales with BDD size, not with the number of reachable
product states, so wide designs (many free environment signals) that drown
the explicit engine in state enumeration stay tractable symbolically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .coverage import CoverageEngine, register_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..problem import CompiledProblem

__all__ = ["SymbolicEngine"]


class SymbolicEngine(CoverageEngine):
    """BDD fixpoint engine (complete, witness-checked).

    ``verify_witness`` keeps the simulator replay of extracted lassos on
    (the default); it can be disabled for benchmarking the raw fixpoint.
    ``bdd_reorder`` enables dynamic variable reordering (greedy sifting,
    triggered on node-table growth during the fixpoints) — off by default
    because the interleaved current/next order is already good for most
    designs, worth trying when ``peak_nodes`` dominates a profile.
    """

    name = "symbolic"
    complete = True

    def __init__(
        self,
        *,
        verify_witness: bool = True,
        slicing="auto",
        max_bound: int = 12,
        bdd_reorder: bool = False,
    ):
        super().__init__(slicing=slicing, max_bound=max_bound)
        self.verify_witness = verify_witness
        self.bdd_reorder = bdd_reorder

    def _cache_backend(self) -> str:
        # The fixpoint never consults the propositional backends, so cached
        # results are valid — and replayed — under every backend setting.
        return "-"

    def _find_run(self, problem: "CompiledProblem"):
        from ..mc.symbolic import find_run_symbolic

        return find_run_symbolic(
            problem.module,
            problem.formulas,
            verify_witness=self.verify_witness,
            automata=problem.automata,
            extra_free=problem.free_signals,
            reorder=self.bdd_reorder,
        )


register_engine("symbolic", SymbolicEngine)
