"""The learned scheduling engine (``--engine auto`` / ``learned``).

The racing portfolio buys robustness with ~3× CPU: every query runs every
member.  The ``auto`` engine spends that CPU only when it has to.  Per query
it extracts the compiled problem's feature record, asks a trained
:class:`~repro.sched.SchedModel` (see ``specmatcher sched train``) for a
ranked engine list, and then:

* **solo** — when the prediction clears the confidence threshold, the
  top-ranked engine runs alone (portfolio-quality verdicts at single-engine
  cost when the model is right);
* **race** — when confidence is low, or no model is configured, the top two
  candidates race through the normal portfolio machinery with a *staggered*
  start: the favourite launches first and the runner-up joins
  ``stagger_seconds`` later, purely as insurance against a misprediction;
* **fallback** — when a confident solo run of the bounded engine comes back
  *non-decisive* (unsat only up to the bound), the complete members race to
  finish the job, so ``auto`` keeps the portfolio's completeness guarantee.

A malformed, stale-schema or unreadable model never breaks a run: loading
problems are counted (``sched.model_errors``) and the engine degrades to the
racing path.  Every verdict carries a ``sched`` record — mode, predicted
ranking, confidence, and whether the prediction *hit* — which flows into
suite shard rows, cached payloads and ``sched_decision`` trace spans, so a
model's real misprediction rate is measurable from any run's artifacts
(``specmatcher sched eval``).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from ..ltl.traces import LassoTrace
from ..obs import metrics, span
from .coverage import CoverageEngine, get_engine, register_engine
from .portfolio import DEFAULT_MEMBERS, PortfolioEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..problem import CompiledProblem
    from ..sched import Prediction, SchedModel

__all__ = [
    "AutoEngine",
    "AutoResult",
    "DEFAULT_CONFIDENCE_THRESHOLD",
    "DEFAULT_STAGGER_SECONDS",
]

#: Minimum prediction confidence for a solo (single-engine) run.
DEFAULT_CONFIDENCE_THRESHOLD = 0.7

#: Head start the predicted winner gets in the low-confidence race.
DEFAULT_STAGGER_SECONDS = 0.05

#: Racing pair used when no model is available at all: the complete explicit
#: engine anchors decisiveness, the bounded engine sprints for shallow
#: witnesses.
_NO_MODEL_PAIR: Tuple[str, ...] = ("explicit", "bmc")

# Process-wide model cache: abspath -> ((mtime_ns, size), SchedModel).
# Suite shards instantiate one engine per query; re-parsing the model JSON
# every time would dominate small queries.  Invalidation is by stat.
_MODEL_CACHE: Dict[str, Tuple[Tuple[int, int], "SchedModel"]] = {}
_MODEL_CACHE_LOCK = threading.Lock()


def _load_cached_model(path: str) -> "SchedModel":
    """Load (or reuse) a validated model; raises ``SchedModelError``."""
    from ..sched import load_model

    abspath = os.path.abspath(path)
    try:
        stat = os.stat(abspath)
        token = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        token = None
    if token is not None:
        with _MODEL_CACHE_LOCK:
            entry = _MODEL_CACHE.get(abspath)
            if entry is not None and entry[0] == token:
                return entry[1]
    model = load_model(abspath)
    if token is not None:
        with _MODEL_CACHE_LOCK:
            _MODEL_CACHE[abspath] = (token, model)
    return model


@dataclass
class AutoResult:
    """Outcome of one scheduled query (duck-typed like the other results)."""

    satisfiable: bool
    winner: str
    complete: bool
    witness: Optional[LassoTrace] = None
    bound: Optional[int] = None
    statistics: object = None
    elapsed_seconds: float = 0.0
    #: member name → outcome, present only when a race ran.
    outcomes: Optional[dict] = None
    #: The scheduling record: ``{"mode": "solo"|"race"|"fallback",
    #: "predicted": [...], "confidence": c, "hit": bool}`` (``predicted`` /
    #: ``hit`` are ``None`` when no model contributed).
    sched: Optional[dict] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.satisfiable


class AutoEngine(CoverageEngine):
    """Predict the winning engine per query; race only when unsure.

    ``model_path`` points at a model written by ``specmatcher sched train``
    (``None`` = always race the no-model pair).  ``confidence_threshold``
    gates solo runs; ``members`` bounds the engines the scheduler may pick.
    """

    name = "auto"
    # Solo bounded runs that stay non-decisive trigger the fallback race of
    # complete members, so auto verdicts are as strong as the portfolio's.
    complete = True

    def __init__(
        self,
        *,
        max_bound: int = 12,
        slicing="auto",
        model_path: Optional[str] = None,
        confidence_threshold: float = DEFAULT_CONFIDENCE_THRESHOLD,
        members: Sequence[str] = DEFAULT_MEMBERS,
        stagger_seconds: float = DEFAULT_STAGGER_SECONDS,
    ):
        super().__init__(slicing=slicing, max_bound=max_bound)
        if not members:
            raise ValueError("auto needs at least one member engine")
        if any(name in ("portfolio", "race", "auto", "learned") for name in members):
            raise ValueError("auto members must be base engines")
        self.model_path = model_path
        self.confidence_threshold = confidence_threshold
        self.members = tuple(members)
        self.stagger_seconds = stagger_seconds

    def _cache_bound(self) -> Optional[int]:
        # The bounded member's reach shapes which witnesses a scheduled run
        # can find first, exactly as for the portfolio.
        return self.max_bound

    def _cache_backend(self) -> str:
        # Member set is identity; the model is deliberately NOT part of the
        # key — verdicts are engine-independent, so cached answers stay valid
        # across retrains (only the recorded winner/sched provenance ages).
        return super()._cache_backend() + "|members=" + ",".join(self.members)

    # -- model / prediction ---------------------------------------------------
    def _model(self) -> Optional["SchedModel"]:
        from ..sched import SchedModelError

        if not self.model_path:
            return None
        try:
            return _load_cached_model(self.model_path)
        except SchedModelError as exc:
            # Degrade, never fail: a bad model file must not break coverage.
            metrics().inc("sched.model_errors")
            with span("sched_model_error", path=str(self.model_path)) as sp:
                sp.set(error=str(exc))
            return None

    def _predict(self, features) -> Optional["Prediction"]:
        model = self._model()
        if model is None:
            return None
        prediction = model.predict(features)
        # Clamp the ranking to the configured member set; a model trained on
        # engines this instance may not use must not schedule them.
        ranking = tuple(name for name in prediction.ranking if name in self.members)
        if not ranking:
            return None
        if ranking != prediction.ranking:
            from ..sched import Prediction as P

            prediction = P(
                ranking=ranking,
                confidence=prediction.confidence,
                rule_index=prediction.rule_index,
            )
        return prediction

    # -- scheduling -----------------------------------------------------------
    def _race_pair(self, prediction: Optional["Prediction"]) -> Tuple[str, ...]:
        if prediction is None:
            pair = tuple(n for n in _NO_MODEL_PAIR if n in self.members) or self.members
            return pair[:2] if len(pair) > 1 else pair
        if len(prediction.ranking) >= 2:
            return prediction.ranking[:2]
        # Single-engine ranking under low confidence: add the best insurance
        # engine available (a complete one if possible).
        rest = [n for n in self.members if n != prediction.ranking[0]]
        complete = [n for n in rest if n != "bmc"]
        extra = (complete or rest)[:1]
        return prediction.ranking + tuple(extra)

    def _complete_members(self) -> Tuple[str, ...]:
        return tuple(n for n in self.members if n != "bmc")

    def _run_race(self, problem: "CompiledProblem", members: Sequence[str],
                  stagger: float):
        if len(members) == 1:
            engine = get_engine(members[0], max_bound=self.max_bound, slicing=self.slicing)
            result = engine.find_run(problem)
            return result, members[0], {members[0]: "won"}
        # _find_run (not find_run): the auto engine's own find_run already
        # owns the cache layer for this query; the race's members still cache
        # under their own keys inside.
        portfolio = PortfolioEngine(
            max_bound=self.max_bound,
            slicing=self.slicing,
            members=members,
            stagger_seconds=stagger,
        )
        result = portfolio._find_run(problem)
        return result, result.winner, result.outcomes

    def _find_run(self, problem: "CompiledProblem"):
        import time

        start = time.perf_counter()
        features = problem.features(bound=self.max_bound)
        prediction = self._predict(features)
        metrics().inc("sched.queries")

        mode: str
        outcomes: Optional[dict] = None
        if prediction is not None and prediction.confidence >= self.confidence_threshold:
            engine = get_engine(
                prediction.engine, max_bound=self.max_bound, slicing=self.slicing
            )
            result = engine.find_run(problem)
            decisive = bool(result.satisfiable) or engine.complete
            if decisive:
                mode = "solo"
                winner = prediction.engine
                metrics().inc("sched.solo")
            else:
                # Confident bounded run stayed inconclusive: complete members
                # finish the job so the verdict keeps portfolio strength.
                mode = "fallback"
                fallback = self._complete_members() or self.members
                result, winner, outcomes = self._run_race(problem, fallback, 0.0)
                metrics().inc("sched.fallbacks")
        else:
            mode = "race"
            pair = self._race_pair(prediction)
            result, winner, outcomes = self._run_race(
                problem, pair, self.stagger_seconds
            )
            metrics().inc("sched.races")

        predicted = list(prediction.ranking) if prediction is not None else None
        confidence = prediction.confidence if prediction is not None else None
        hit = (winner == prediction.engine) if prediction is not None else None
        if hit is True:
            metrics().inc("sched.hits")
        elif hit is False:
            metrics().inc("sched.misses")
        sched = {
            "mode": mode,
            "predicted": predicted,
            "confidence": confidence,
            "hit": hit,
        }
        with span("sched_decision", design=problem.source_name) as sp:
            sp.set(winner=winner, mode=mode, features=features,
                   predicted=predicted, confidence=confidence, hit=hit)
        elapsed = time.perf_counter() - start
        return AutoResult(
            satisfiable=bool(result.satisfiable),
            winner=winner,
            complete=self._auto_complete(result, winner),
            witness=result.witness,
            bound=getattr(result, "bound", None),
            statistics=getattr(result, "statistics", None),
            elapsed_seconds=elapsed,
            outcomes=outcomes,
            sched=sched,
        )

    def _auto_complete(self, result, winner: str) -> bool:
        if bool(result.satisfiable):
            # A concrete witness is definitive no matter who found it.
            return True
        inner = getattr(result, "complete", None)
        if inner is not None:
            return bool(inner)
        return winner != "bmc"


register_engine("auto", AutoEngine)
