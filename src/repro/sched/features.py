"""The feature schema of the learned engine scheduler.

Every suite shard row, cached result payload and ``sched_decision`` trace
span carries the per-query ``features`` dict produced by
:meth:`repro.problem.ir.CompiledProblem.features` — structural size of the
(sliced) query plus the bound the bounded engine would search to.  This
module pins down the *order and identity* of those features as a versioned
schema: the trained model stores the schema fingerprint, and prediction
refuses to run against records whose feature set drifted (a stale model must
degrade the ``auto`` engine to racing, never silently mis-rank engines).

Everything here is deterministic and dependency-free: feature vectors are
plain lists of floats in :data:`FEATURE_NAMES` order, independent of dict
insertion order and of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Mapping, Optional

__all__ = [
    "SCHEMA_VERSION",
    "FEATURE_NAMES",
    "schema_fingerprint",
    "featurize",
    "feature_dict",
]

#: Version of the feature schema (bump when FEATURE_NAMES changes shape).
SCHEMA_VERSION = 1

#: Canonical feature order.  Matches the keys of
#: :meth:`CompiledProblem.features`; ``sliced`` is encoded as 0.0/1.0 and a
#: missing/None ``bound`` as -1.0 (the trainer never sees one from a
#: well-formed suite row, but old cache entries may carry it).
FEATURE_NAMES = (
    "coi_size",
    "registers",
    "automaton_states",
    "bound",
    "formulas",
    "free_signals",
    "sliced",
    "slice_ratio",
)


def schema_fingerprint() -> str:
    """Stable fingerprint of the feature schema (names + version).

    Stored in every persisted model; checked on load so a model trained
    against one feature layout is rejected — with a clean error — once the
    layout changes.
    """
    text = f"v{SCHEMA_VERSION}|" + ",".join(FEATURE_NAMES)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _as_float(name: str, value: object) -> float:
    if value is None:
        # Only `bound` is ever legitimately absent (records written before
        # engines learned to fill it); every other None is treated as 0.
        return -1.0 if name == "bound" else 0.0
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    return float(value)


def featurize(features: Mapping[str, object]) -> List[float]:
    """A features dict → canonical vector (floats in FEATURE_NAMES order)."""
    return [_as_float(name, features.get(name)) for name in FEATURE_NAMES]


def feature_dict(vector: List[float]) -> Dict[str, float]:
    """Inverse of :func:`featurize` (diagnostics / ``sched show``)."""
    return dict(zip(FEATURE_NAMES, vector))


def feature_complete(features: Optional[Mapping[str, object]]) -> bool:
    """True when every schema feature is present and non-None.

    The contract the suite runner and engine cache payloads maintain (and
    tests assert): training rows never need imputation.
    """
    if features is None:
        return False
    return all(features.get(name) is not None for name in FEATURE_NAMES)
