"""The persisted scheduler model: a deterministic decision list over features.

A :class:`SchedModel` is an *ordered* list of threshold rules — ``feature <=
t`` / ``feature > t`` → a ranked engine list — plus a default ranking for
queries no rule matches.  Prediction walks the rules in order and returns
the first match as a :class:`Prediction` (ranking + confidence); the
``auto`` engine runs the top-ranked engine alone when the confidence clears
its threshold and falls back to a staggered top-2 race otherwise.

The model is fully deterministic and dependency-free:

* training (:mod:`repro.sched.train`) breaks every tie by a fixed feature /
  threshold / engine order, so the same rows — in any order, under any
  ``PYTHONHASHSEED`` — produce byte-identical model JSON;
* serialization is canonical (``sort_keys=True``, fixed float rounding), so
  ``from_json(to_json(m)).to_json()`` round-trips byte-identically;
* loading validates a version number and the feature-schema fingerprint
  (:func:`repro.sched.features.schema_fingerprint`) and raises
  :class:`SchedModelError` on any mismatch or malformed file — the ``auto``
  engine catches that and degrades to racing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .features import FEATURE_NAMES, SCHEMA_VERSION, featurize, schema_fingerprint

__all__ = [
    "MODEL_VERSION",
    "SchedModelError",
    "SchedRule",
    "Prediction",
    "SchedModel",
    "load_model",
    "save_model",
]

#: Version of the persisted model layout (independent of the feature schema).
MODEL_VERSION = 1


class SchedModelError(ValueError):
    """A model file is malformed, wrong-version or schema-stale."""


@dataclass(frozen=True)
class SchedRule:
    """One decision-list rule: ``feature op threshold`` → ranked engines."""

    feature: str
    op: str  # "<=" | ">"
    threshold: float
    ranking: Tuple[str, ...]
    purity: float  # fraction of matched training rows won by ranking[0]
    support: int  # matched training rows

    def matches(self, vector: Sequence[float]) -> bool:
        value = vector[FEATURE_NAMES.index(self.feature)]
        return value <= self.threshold if self.op == "<=" else value > self.threshold

    def describe(self) -> str:
        return (
            f"{self.feature} {self.op} {self.threshold:g} -> "
            f"{' > '.join(self.ranking)}  (purity {self.purity:.2f}, "
            f"support {self.support})"
        )


@dataclass(frozen=True)
class Prediction:
    """A ranked engine list for one query, with a confidence in [0, 1]."""

    ranking: Tuple[str, ...]
    confidence: float
    rule_index: Optional[int] = None  # None = default ranking

    @property
    def engine(self) -> str:
        return self.ranking[0]


def _confidence(purity: float, support: int) -> float:
    """Damp rule purity by support so one-row rules never look certain."""
    return round(purity * (support / (support + 1.0)), 4)


@dataclass
class SchedModel:
    """An ordered decision list + default ranking, with provenance."""

    rules: List[SchedRule] = field(default_factory=list)
    default_ranking: Tuple[str, ...] = ()
    default_purity: float = 0.0
    default_support: int = 0
    trained_rows: int = 0
    engine_wins: Dict[str, int] = field(default_factory=dict)
    feature_fingerprint: str = field(default_factory=schema_fingerprint)

    def predict(self, features: Mapping[str, object]) -> Prediction:
        """Ranked engines for one query's feature dict (first matching rule)."""
        vector = featurize(features)
        for index, rule in enumerate(self.rules):
            if rule.matches(vector):
                return Prediction(
                    ranking=rule.ranking,
                    confidence=_confidence(rule.purity, rule.support),
                    rule_index=index,
                )
        return Prediction(
            ranking=self.default_ranking,
            confidence=_confidence(self.default_purity, self.default_support),
            rule_index=None,
        )

    # -- serialization --------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        return {
            "version": MODEL_VERSION,
            "feature_schema": {
                "version": SCHEMA_VERSION,
                "names": list(FEATURE_NAMES),
                "fingerprint": self.feature_fingerprint,
            },
            "rules": [
                {
                    "feature": rule.feature,
                    "op": rule.op,
                    "threshold": round(rule.threshold, 6),
                    "ranking": list(rule.ranking),
                    "purity": round(rule.purity, 4),
                    "support": rule.support,
                }
                for rule in self.rules
            ],
            "default": {
                "ranking": list(self.default_ranking),
                "purity": round(self.default_purity, 4),
                "support": self.default_support,
            },
            "trained_rows": self.trained_rows,
            "engine_wins": {name: self.engine_wins[name] for name in sorted(self.engine_wins)},
        }

    def to_json(self) -> str:
        """Canonical JSON text (byte-identical for equal models)."""
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"

    @staticmethod
    def from_payload(payload: Mapping[str, object]) -> "SchedModel":
        if not isinstance(payload, Mapping):
            raise SchedModelError("model payload is not a JSON object")
        version = payload.get("version")
        if version != MODEL_VERSION:
            raise SchedModelError(
                f"unsupported model version {version!r} (expected {MODEL_VERSION})"
            )
        schema = payload.get("feature_schema") or {}
        fingerprint = schema.get("fingerprint")
        if fingerprint != schema_fingerprint():
            raise SchedModelError(
                f"stale feature schema: model has {fingerprint!r}, "
                f"current schema is {schema_fingerprint()!r} — retrain with "
                "`specmatcher sched train`"
            )
        try:
            rules = [
                SchedRule(
                    feature=str(entry["feature"]),
                    op=str(entry["op"]),
                    threshold=float(entry["threshold"]),
                    ranking=tuple(entry["ranking"]),
                    purity=float(entry["purity"]),
                    support=int(entry["support"]),
                )
                for entry in payload.get("rules", [])
            ]
            default = payload.get("default") or {}
            model = SchedModel(
                rules=rules,
                default_ranking=tuple(default.get("ranking", ())),
                default_purity=float(default.get("purity", 0.0)),
                default_support=int(default.get("support", 0)),
                trained_rows=int(payload.get("trained_rows", 0)),
                engine_wins={
                    str(k): int(v) for k, v in (payload.get("engine_wins") or {}).items()
                },
                feature_fingerprint=str(fingerprint),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SchedModelError(f"malformed model payload: {exc}") from exc
        for rule in model.rules:
            if rule.feature not in FEATURE_NAMES:
                raise SchedModelError(f"rule references unknown feature {rule.feature!r}")
            if rule.op not in ("<=", ">"):
                raise SchedModelError(f"rule has unknown operator {rule.op!r}")
            if not rule.ranking:
                raise SchedModelError("rule has an empty engine ranking")
        if not model.default_ranking:
            raise SchedModelError("model has no default engine ranking")
        return model

    def describe(self) -> str:
        """Human-readable dump (the ``sched show`` subcommand)."""
        lines = [
            f"scheduler model v{MODEL_VERSION} "
            f"(feature schema {self.feature_fingerprint}, "
            f"trained on {self.trained_rows} rows)",
            "rules (first match wins):",
        ]
        if self.rules:
            for index, rule in enumerate(self.rules):
                lines.append(f"  {index}: {rule.describe()}")
        else:
            lines.append("  (none)")
        lines.append(
            f"default: {' > '.join(self.default_ranking) or '-'} "
            f"(purity {self.default_purity:.2f}, support {self.default_support})"
        )
        wins = ", ".join(f"{name}={count}" for name, count in sorted(self.engine_wins.items()))
        lines.append(f"training wins: {wins or '-'}")
        return "\n".join(lines)


def load_model(path: str) -> SchedModel:
    """Load and validate a persisted model; raises :class:`SchedModelError`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise SchedModelError(f"cannot read model file {path}: {exc}") from exc
    except ValueError as exc:
        raise SchedModelError(f"model file {path} is not valid JSON: {exc}") from exc
    return SchedModel.from_payload(payload)


def save_model(model: SchedModel, path: str) -> None:
    """Write the model atomically (temp file + rename) as canonical JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(model.to_json())
    os.replace(tmp, path)
