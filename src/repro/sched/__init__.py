"""``repro.sched`` — the learned engine scheduler (``--engine auto``).

The racing portfolio answers every query by burning ~3× CPU; at suite scale
that triples the hardware one box needs.  This package closes the ROADMAP's
"learned portfolio scheduling" item: the feature/winner records that suite
shard rows, cached result payloads and trace spans already carry become
training data for a small, fully deterministic, dependency-free predictor —

* :mod:`repro.sched.features` — the versioned feature schema (order,
  fingerprint, vectorization);
* :mod:`repro.sched.model` — the persisted decision-list model, canonical
  JSON serialization, validation (:class:`SchedModelError`);
* :mod:`repro.sched.train` — row collectors (suite report / cache dir /
  trace JSONL), the deterministic greedy trainer, and misprediction
  evaluation.

The ``auto`` coverage engine (:mod:`repro.engines.auto`) consumes the model:
confident predictions run one engine solo; everything else falls back to a
staggered top-2 race.  ``specmatcher sched train|show|eval`` is the
operational loop: run a suite, train, inspect, measure.
"""

from .features import (
    FEATURE_NAMES,
    SCHEMA_VERSION,
    feature_complete,
    featurize,
    schema_fingerprint,
)
from .model import (
    MODEL_VERSION,
    Prediction,
    SchedModel,
    SchedModelError,
    SchedRule,
    load_model,
    save_model,
)
from .train import (
    TrainingRow,
    collect_rows,
    evaluate,
    rows_from_cache_dir,
    rows_from_report,
    rows_from_trace,
    train_predictor,
)

__all__ = [
    "FEATURE_NAMES",
    "SCHEMA_VERSION",
    "featurize",
    "feature_complete",
    "schema_fingerprint",
    "MODEL_VERSION",
    "SchedModel",
    "SchedModelError",
    "SchedRule",
    "Prediction",
    "load_model",
    "save_model",
    "TrainingRow",
    "train_predictor",
    "evaluate",
    "collect_rows",
    "rows_from_report",
    "rows_from_cache_dir",
    "rows_from_trace",
]
