"""Training, row collection and evaluation for the learned engine scheduler.

Training data is whatever the suite and the engines already emit: portfolio
(and low-confidence ``auto``) races record the per-query ``features`` dict
together with the ``winner`` — in suite shard rows, in cached result
payloads and in ``sched_decision``/``portfolio_race`` trace spans.  The
collectors here read all three sources into :class:`TrainingRow`\\ s; solo
``auto`` rows are skipped by default (a solo run's "winner" is whatever the
model already predicted — no counterfactual, so feeding it back would only
reinforce the model's current beliefs).

:func:`train_predictor` fits the deterministic decision list of
:mod:`repro.sched.model`: rows are canonically sorted (so training is
independent of input order and of ``PYTHONHASHSEED``), candidate threshold
rules are scored by (purity, support) with fixed tie-breaks, and greedy
selection removes covered rows until no rule improves on the remaining
majority.  :func:`evaluate` reports the misprediction rate of a model
against a row set — the number the README's "reading misprediction rate"
section explains.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .features import FEATURE_NAMES, featurize
from .model import Prediction, SchedModel, SchedRule

__all__ = [
    "TrainingRow",
    "train_predictor",
    "rows_from_report",
    "rows_from_cache_dir",
    "rows_from_trace",
    "collect_rows",
    "evaluate",
]

#: Cap on candidate thresholds per feature (evenly subsampled when exceeded).
_MAX_THRESHOLDS = 16


@dataclass(frozen=True)
class TrainingRow:
    """One (features, winner) observation from a recorded race."""

    features: Mapping[str, object]
    winner: str
    source: str = ""  # "report" | "cache" | "trace" | ""
    design: str = ""
    mode: str = ""  # "race" | "ladder" | "fallback" | ""


def _row_mode(sched: Optional[Mapping[str, object]]) -> str:
    if not sched:
        return ""
    return str(sched.get("mode") or "")


def _usable(features, winner, mode: str, *, include_solo: bool) -> bool:
    if not winner or not isinstance(features, Mapping):
        return False
    if mode == "solo" and not include_solo:
        return False
    return True


def rows_from_report(payload, *, include_solo: bool = False) -> List[TrainingRow]:
    """Rows from a suite JSON report (a path or an already-loaded dict)."""
    if isinstance(payload, str):
        with open(payload, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    rows: List[TrainingRow] = []
    for shard in payload.get("shards", ()):
        if shard.get("status") != "ok":
            continue
        mode = _row_mode(shard.get("sched"))
        features, winner = shard.get("features"), shard.get("winner")
        if not _usable(features, winner, mode, include_solo=include_solo):
            continue
        rows.append(
            TrainingRow(
                features=features,
                winner=str(winner),
                source="report",
                design=str(shard.get("design", "")),
                mode=mode,
            )
        )
    return rows


def rows_from_cache_dir(cache_dir: str, *, include_solo: bool = False) -> List[TrainingRow]:
    """Rows from the persistent result cache's stored payloads.

    Walks every entry under ``cache_dir`` (the same files ``specmatcher
    cache stats`` counts) and keeps payloads that carry both a winner and a
    feature record — i.e. decided portfolio/auto races.
    """
    rows: List[TrainingRow] = []
    for root, _, files in os.walk(os.path.abspath(cache_dir)):
        for name in sorted(files):
            if name.startswith(".") or not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(root, name), "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                continue
            if not isinstance(payload, dict):
                continue
            mode = _row_mode(payload.get("sched"))
            features, winner = payload.get("features"), payload.get("winner")
            if not _usable(features, winner, mode, include_solo=include_solo):
                continue
            rows.append(
                TrainingRow(
                    features=features, winner=str(winner), source="cache", mode=mode
                )
            )
    return rows


def rows_from_trace(path: str, *, include_solo: bool = False) -> List[TrainingRow]:
    """Rows from a ``--trace`` JSONL stream.

    Reads the ``sched_decision`` (auto engine) and ``portfolio_race``
    (portfolio engine) spans, whose attributes carry the query's feature
    record and the winning member.  Malformed lines are skipped — traces of
    crashed runs stay usable.
    """
    rows: List[TrainingRow] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record.get("type") != "span":
                continue
            if record.get("name") not in ("sched_decision", "portfolio_race"):
                continue
            attrs = record.get("attrs") or {}
            mode = str(attrs.get("mode") or "")
            features, winner = attrs.get("features"), attrs.get("winner")
            if not _usable(features, winner, mode, include_solo=include_solo):
                continue
            rows.append(
                TrainingRow(
                    features=features,
                    winner=str(winner),
                    source="trace",
                    design=str(attrs.get("design", "")),
                    mode=mode,
                )
            )
    return rows


def collect_rows(
    *,
    reports: Sequence[str] = (),
    cache_dirs: Sequence[str] = (),
    traces: Sequence[str] = (),
    include_solo: bool = False,
) -> List[TrainingRow]:
    """Union of rows from every named source (the ``sched train`` CLI)."""
    rows: List[TrainingRow] = []
    for path in reports:
        rows.extend(rows_from_report(path, include_solo=include_solo))
    for path in cache_dirs:
        rows.extend(rows_from_cache_dir(path, include_solo=include_solo))
    for path in traces:
        rows.extend(rows_from_trace(path, include_solo=include_solo))
    return rows


# -- training -----------------------------------------------------------------


def _coerce_row(row) -> Tuple[List[float], str]:
    if isinstance(row, TrainingRow):
        return featurize(row.features), row.winner
    if isinstance(row, Mapping):
        return featurize(row["features"]), str(row["winner"])
    features, winner = row  # (features_dict, winner) pairs
    return featurize(features), str(winner)


def _ranking(counts: Dict[str, int], engines: Sequence[str]) -> Tuple[str, ...]:
    """Engines ranked by win count (desc), name (asc); zero-count tail kept."""
    return tuple(sorted(engines, key=lambda name: (-counts.get(name, 0), name)))


def _majority(vectors_winners: Sequence[Tuple[List[float], str]]) -> Tuple[str, float]:
    counts: Dict[str, int] = {}
    for _, winner in vectors_winners:
        counts[winner] = counts.get(winner, 0) + 1
    top = min(counts, key=lambda name: (-counts[name], name))
    return top, counts[top] / len(vectors_winners)


def train_predictor(
    rows: Iterable,
    *,
    max_rules: int = 16,
    min_support: int = 1,
) -> SchedModel:
    """Fit the deterministic decision list from recorded (features, winner) rows.

    Accepts :class:`TrainingRow`\\ s, ``{"features": ..., "winner": ...}``
    mappings or plain ``(features, winner)`` pairs.  Raises ``ValueError``
    on an empty row set — a model that has seen nothing must not exist (the
    ``auto`` engine treats "no model" as "always race" instead).
    """
    data = [_coerce_row(row) for row in rows]
    if not data:
        raise ValueError("cannot train a scheduler model from zero rows")
    # Canonical order: training must not depend on input order or hash seed.
    data.sort(key=lambda item: (item[0], item[1]))

    engines = sorted({winner for _, winner in data})
    global_counts: Dict[str, int] = {}
    for _, winner in data:
        global_counts[winner] = global_counts.get(winner, 0) + 1
    global_ranking = _ranking(global_counts, engines)

    rules: List[SchedRule] = []
    remaining = list(data)
    while remaining and len(rules) < max_rules:
        majority_engine, majority_purity = _majority(remaining)
        if majority_purity >= 1.0:
            break  # the default ranking of what's left is already perfect
        best = None  # (purity, support, -feat_idx, -threshold, op) maximized
        best_rule = None
        for feat_idx, feature in enumerate(FEATURE_NAMES):
            values = sorted({vec[feat_idx] for vec, _ in remaining})
            if len(values) < 2:
                continue
            thresholds = [
                (values[i] + values[i + 1]) / 2.0 for i in range(len(values) - 1)
            ]
            if len(thresholds) > _MAX_THRESHOLDS:
                step = len(thresholds) / _MAX_THRESHOLDS
                thresholds = [thresholds[int(i * step)] for i in range(_MAX_THRESHOLDS)]
            for threshold in thresholds:
                for op in ("<=", ">"):
                    if op == "<=":
                        matched = [item for item in remaining if item[0][feat_idx] <= threshold]
                    else:
                        matched = [item for item in remaining if item[0][feat_idx] > threshold]
                    if len(matched) < min_support or len(matched) == len(remaining):
                        continue
                    counts: Dict[str, int] = {}
                    for _, winner in matched:
                        counts[winner] = counts.get(winner, 0) + 1
                    top = min(counts, key=lambda name: (-counts[name], name))
                    purity = counts[top] / len(matched)
                    key = (purity, len(matched), -feat_idx, -threshold, op)
                    if best is None or key > best:
                        best = key
                        ranking = _ranking(counts, engines)
                        best_rule = SchedRule(
                            feature=feature,
                            op=op,
                            threshold=round(threshold, 6),
                            ranking=ranking,
                            purity=round(purity, 4),
                            support=len(matched),
                        )
        if best_rule is None or best_rule.purity <= majority_purity:
            break  # no rule beats just predicting the remaining majority
        rules.append(best_rule)
        feat_idx = FEATURE_NAMES.index(best_rule.feature)
        if best_rule.op == "<=":
            remaining = [i for i in remaining if i[0][feat_idx] > best_rule.threshold]
        else:
            remaining = [i for i in remaining if i[0][feat_idx] <= best_rule.threshold]

    if remaining:
        default_engine, default_purity = _majority(remaining)
        counts = {}
        for _, winner in remaining:
            counts[winner] = counts.get(winner, 0) + 1
        default_ranking = _ranking(counts, engines)
        default_support = len(remaining)
    else:
        default_ranking = global_ranking
        default_purity = global_counts[global_ranking[0]] / len(data)
        default_support = len(data)

    return SchedModel(
        rules=rules,
        default_ranking=default_ranking,
        default_purity=round(default_purity, 4),
        default_support=default_support,
        trained_rows=len(data),
        engine_wins=global_counts,
    )


# -- evaluation ---------------------------------------------------------------


def evaluate(
    model: SchedModel,
    rows: Iterable,
    *,
    confidence_threshold: Optional[float] = None,
) -> Dict[str, object]:
    """Misprediction rate of ``model`` against recorded rows.

    A row counts as mispredicted when the model's top-ranked engine differs
    from the recorded winner.  With a ``confidence_threshold`` the summary
    also splits rows into confident (would have run solo) and unconfident
    (would have raced) — a confident misprediction is the expensive kind.
    """
    total = mispredicted = 0
    confident = confident_mispredicted = 0
    per_engine: Dict[str, Dict[str, int]] = {}
    for row in rows:
        vector_features = row.features if isinstance(row, TrainingRow) else (
            row["features"] if isinstance(row, Mapping) else row[0]
        )
        winner = row.winner if isinstance(row, TrainingRow) else (
            str(row["winner"]) if isinstance(row, Mapping) else str(row[1])
        )
        prediction: Prediction = model.predict(vector_features)
        hit = prediction.engine == winner
        total += 1
        if not hit:
            mispredicted += 1
        if confidence_threshold is not None and prediction.confidence >= confidence_threshold:
            confident += 1
            if not hit:
                confident_mispredicted += 1
        entry = per_engine.setdefault(winner, {"rows": 0, "hits": 0})
        entry["rows"] += 1
        entry["hits"] += 1 if hit else 0
    summary: Dict[str, object] = {
        "rows": total,
        "mispredictions": mispredicted,
        "rate": round(mispredicted / total, 4) if total else 0.0,
        "per_engine": {name: per_engine[name] for name in sorted(per_engine)},
    }
    if confidence_threshold is not None:
        summary["confidence_threshold"] = confidence_threshold
        summary["confident_rows"] = confident
        summary["confident_mispredictions"] = confident_mispredicted
        summary["confident_rate"] = (
            round(confident_mispredicted / confident, 4) if confident else 0.0
        )
    return summary
