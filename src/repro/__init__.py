"""repro — design intent coverage with concrete RTL blocks (SpecMatcher).

A from-scratch Python reproduction of

    S. Das, P. Basu, P. Dasgupta, P. P. Chakrabarti,
    "What lies between design intent coverage and model checking?",
    DATE 2006.

The package layers are:

* :mod:`repro.logic` — boolean expressions, cubes/covers, BDDs,
* :mod:`repro.ltl` — LTL formulas, parser, Büchi automata, decision procedures,
* :mod:`repro.sat` — CNF, Tseitin transformation and a CDCL SAT solver,
* :mod:`repro.rtl` — netlists, a tiny HDL, simulation, FSM extraction, Kripke
  structures,
* :mod:`repro.mc` — explicit-state LTL model checking,
* :mod:`repro.bmc` — SAT-based bounded model checking and k-induction,
* :mod:`repro.sva` — a bounded SVA property front-end desugaring to LTL,
* :mod:`repro.problem` — the compiled :class:`CoverageProblem` IR:
  cone-of-influence slice, memoized property automata, free/observed signal
  partition and structural fingerprint, built once per query shape and
  consumed by every engine,
* :mod:`repro.engines` — the unified decision-backend layer: propositional
  backends (truth table / BDD / SAT / auto) and coverage engines
  (explicit / bmc / symbolic / portfolio) behind string-keyed registries,
* :mod:`repro.core` — the paper's contribution: the intent-coverage problem,
  the ``T_M`` construction, the primary coverage question (Theorem 1), the
  coverage hole (Theorem 2), the gap-presentation Algorithm 1 and the
  spectrum baselines (pure intent coverage, full model checking),
* :mod:`repro.runner` — the batch coverage-suite subsystem: sharded parallel
  execution over a process pool plus a persistent structurally-keyed
  decision-result cache,
* :mod:`repro.designs` — the paper's example designs, the Table-1 suite and
  seeded random design/spec generators.

Quick start::

    from repro.designs import build_mal_with_gap
    from repro.core import analyze_problem

    report = analyze_problem(build_mal_with_gap())
    print(report.describe())
"""

from .ltl import parse, Formula, LassoTrace
from .rtl import Module, parse_module, compose, simulate, Stimulus
from .mc import check, find_run
from .problem import CompiledProblem, compile_problem
from .engines import (
    get_engine,
    get_prop_backend,
    set_prop_backend,
    using_prop_backend,
)
from .core import (
    CoverageProblem,
    CoverageOptions,
    CoverageReport,
    GapAnalysis,
    SpecMatcher,
    analyze_problem,
    find_coverage_gap,
    primary_coverage_check,
    coverage_hole,
    build_tm,
    format_report,
    format_table1,
)
from .runner import ResultCache, expand_jobs, run_suite, using_result_cache

__version__ = "1.0.0"

__all__ = [
    "parse",
    "Formula",
    "LassoTrace",
    "Module",
    "parse_module",
    "compose",
    "simulate",
    "Stimulus",
    "check",
    "find_run",
    "CompiledProblem",
    "compile_problem",
    "get_engine",
    "get_prop_backend",
    "set_prop_backend",
    "using_prop_backend",
    "CoverageProblem",
    "CoverageOptions",
    "CoverageReport",
    "GapAnalysis",
    "SpecMatcher",
    "analyze_problem",
    "find_coverage_gap",
    "primary_coverage_check",
    "coverage_hole",
    "build_tm",
    "format_report",
    "format_table1",
    "ResultCache",
    "expand_jobs",
    "run_suite",
    "using_result_cache",
    "__version__",
]
