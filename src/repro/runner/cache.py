"""Persistent decision-result cache keyed by structural query fingerprints.

PR 1's hash-consed kernel makes the *identity* of a boolean query cheap to
compute inside one process; this module extends that idea across processes and
across runs.  Every model-relative decision query — "is there a run of module
``M`` satisfying formulas ``phi_1..phi_n`` on engine ``E`` with backend ``B``
up to bound ``k``?" — is given a **stable structural fingerprint** (a SHA-256
over a canonical linearisation of the netlist expressions and the LTL
formulas), and the query's outcome (satisfiable / witness lasso / bound) is
stored under that key:

* **in memory**, so overlapping shards of one suite run never re-answer a
  decided query, and
* **on disk** (one JSON file per key, written atomically), so a warm rerun of
  the whole coverage suite is nearly free and reports its hit ratio.

Fingerprints are *structural*, not ``repr``-based: two modules with the same
inputs/assigns/registers hash identically regardless of object identity or
build order of the hash-consing tables, and the linearisation walks the
expression DAG once per node (shared sub-DAGs are emitted once), so keying a
query is linear in DAG size.

The process-wide *active* cache mirrors the active propositional backend of
:mod:`repro.engines.prop`: engines consult :func:`active_result_cache`, and
the suite runner / :class:`~repro.core.coverage.CoverageOptions` install one
via :func:`set_result_cache` / :func:`using_result_cache`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

try:  # POSIX only; the sidecar merge degrades to lockless on other platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

from ..logic.boolexpr import AndExpr, BoolExpr, Const, NotExpr, OrExpr, Var, XorExpr
from ..obs import metrics
from ..ltl.ast import (
    Always,
    And,
    Atom,
    Eventually,
    FalseFormula,
    Formula,
    Iff,
    Implies,
    Next,
    Not,
    Or,
    Release,
    TrueFormula,
    Until,
    WeakUntil,
)
from ..ltl.traces import LassoTrace

__all__ = [
    "expr_fingerprint",
    "formula_fingerprint",
    "module_fingerprint",
    "query_key",
    "encode_trace",
    "decode_trace",
    "encode_run_result",
    "CachedRunResult",
    "CacheStats",
    "ResultCache",
    "cache_for_dir",
    "cache_dir_stats",
    "clear_cache_dir",
    "merge_persistent_stats",
    "read_persistent_stats",
    "active_result_cache",
    "set_result_cache",
    "using_result_cache",
]


# -- structural fingerprints --------------------------------------------------


def expr_fingerprint(expr: BoolExpr) -> str:
    """Stable fingerprint of a :class:`BoolExpr` DAG (linear in DAG size).

    Nodes are numbered in a deterministic post-order; each node contributes one
    line naming its operator and the numbers of its children, so shared
    sub-DAGs are serialised exactly once.  The result is independent of the
    process, of ``PYTHONHASHSEED`` and of hash-consing table state.
    """
    memo: Dict[BoolExpr, int] = {}
    lines: List[str] = []
    stack: List[Tuple[BoolExpr, bool]] = [(expr, False)]
    while stack:
        node, processed = stack.pop()
        if node in memo:
            continue
        children = _expr_children(node)
        if not processed:
            stack.append((node, True))
            for child in reversed(children):
                if child not in memo:
                    stack.append((child, False))
            continue
        memo[node] = len(lines)
        lines.append(_expr_line(node, [memo[child] for child in children]))
    digest = hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
    return digest


def _expr_children(node: BoolExpr) -> Tuple[BoolExpr, ...]:
    if isinstance(node, NotExpr):
        return (node.operand,)
    if isinstance(node, (AndExpr, OrExpr, XorExpr)):
        return node.operands
    return ()


def _expr_line(node: BoolExpr, child_ids: List[int]) -> str:
    if isinstance(node, Var):
        return f"v:{node.name}"
    if isinstance(node, Const):
        return f"c:{int(node.value)}"
    if isinstance(node, NotExpr):
        return f"!:{child_ids[0]}"
    if isinstance(node, AndExpr):
        return "&:" + ",".join(map(str, child_ids))
    if isinstance(node, OrExpr):
        return "|:" + ",".join(map(str, child_ids))
    if isinstance(node, XorExpr):
        return "^:" + ",".join(map(str, child_ids))
    raise TypeError(f"cannot fingerprint expression of type {type(node).__name__}")


_FORMULA_TAGS = {
    TrueFormula: "true",
    FalseFormula: "false",
    Not: "!",
    And: "&",
    Or: "|",
    Implies: "->",
    Iff: "<->",
    Next: "X",
    Eventually: "F",
    Always: "G",
    Until: "U",
    Release: "R",
    WeakUntil: "W",
}


def formula_fingerprint(formula: Formula) -> str:
    """Stable fingerprint of an LTL formula tree (iterative, memoised)."""
    memo: Dict[Formula, int] = {}
    lines: List[str] = []
    stack: List[Tuple[Formula, bool]] = [(formula, False)]
    while stack:
        node, processed = stack.pop()
        if node in memo:
            continue
        children = node.children()
        if not processed:
            stack.append((node, True))
            for child in reversed(children):
                if child not in memo:
                    stack.append((child, False))
            continue
        memo[node] = len(lines)
        if isinstance(node, Atom):
            line = f"a:{node.name}"
        else:
            tag = _FORMULA_TAGS.get(type(node))
            if tag is None:
                raise TypeError(f"cannot fingerprint formula of type {type(node).__name__}")
            line = tag + ":" + ",".join(str(memo[child]) for child in children)
        lines.append(line)
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def module_fingerprint(module) -> str:
    """Stable fingerprint of a netlist :class:`~repro.rtl.netlist.Module`.

    Covers the interface (input/output order is part of the module's identity)
    and every driver: assigns and registers are serialised in sorted signal
    order with the structural fingerprint of their expressions, so two
    structurally identical modules key identically across processes.  The
    module *name* is deliberately excluded.
    """
    lines = [
        "in:" + ",".join(module.inputs),
        "out:" + ",".join(module.outputs),
    ]
    for name in sorted(module.assigns):
        lines.append(f"as:{name}={expr_fingerprint(module.assigns[name])}")
    for name in sorted(module.registers):
        register = module.registers[name]
        lines.append(f"rg:{name}={expr_fingerprint(register.next_value)}:{int(register.init)}")
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def query_key(
    kind: str,
    module,
    formulas: Sequence[Formula],
    *,
    engine: str,
    backend: str,
    bound: Optional[int] = None,
    extra: Sequence[str] = (),
) -> str:
    """The cache key of one decision query.

    ``kind`` namespaces the query shape (engine-level run search, raw BMC
    search, ...); ``engine``/``backend``/``bound`` make keys precise about the
    decision procedure, so a bounded verdict can never shadow a complete one.
    """
    parts = [
        f"kind={kind}",
        f"engine={engine}",
        f"backend={backend}",
        f"bound={'-' if bound is None else bound}",
        f"module={module_fingerprint(module)}",
    ]
    parts.extend(f"formula={formula_fingerprint(formula)}" for formula in formulas)
    parts.extend(f"extra={item}" for item in extra)
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


# -- payload encoding ---------------------------------------------------------


def encode_trace(trace: Optional[LassoTrace]) -> Optional[dict]:
    """JSON-encodable form of a lasso witness (``None`` passes through)."""
    if trace is None:
        return None
    return {
        "stem": [dict(state) for state in trace.stem],
        "loop": [dict(state) for state in trace.loop],
    }


def decode_trace(payload: Optional[dict]) -> Optional[LassoTrace]:
    """Inverse of :func:`encode_trace`."""
    if payload is None:
        return None
    return LassoTrace(payload["stem"], payload["loop"])


def encode_run_result(result) -> dict:
    """Encode any engine run result (explicit / BMC / portfolio / cached).

    ``complete`` and ``winner`` are carried for results that declare them
    (the portfolio engine's verdict strength depends on which member won;
    ``None`` means "the engine's own completeness applies").
    """
    return {
        "satisfiable": bool(result.satisfiable),
        "witness": encode_trace(result.witness),
        "bound": getattr(result, "bound", None),
        "loop_start": getattr(result, "loop_start", None),
        "elapsed_seconds": float(getattr(result, "elapsed_seconds", 0.0)),
        "complete": getattr(result, "complete", None),
        "winner": getattr(result, "winner", None),
        "sched": getattr(result, "sched", None),
    }


@dataclass
class CachedRunResult:
    """A decided query replayed from the cache.

    Duck-type compatible with :class:`~repro.mc.modelcheck.ExistentialResult`
    and :class:`~repro.bmc.engine.BMCResult` where the engine layer needs it
    (``satisfiable`` / ``witness`` / ``bound`` / ``statistics``).
    """

    satisfiable: bool
    witness: Optional[LassoTrace] = None
    bound: Optional[int] = None
    loop_start: Optional[int] = None
    statistics: object = None
    elapsed_seconds: float = 0.0
    cached: bool = True
    #: ``None`` means "the replaying engine's own completeness applies".
    complete: Optional[bool] = None
    winner: Optional[str] = None
    #: Scheduler record of the deciding run (portfolio/auto entries only):
    #: race mode, predicted ranking, confidence, hit.
    sched: Optional[dict] = None
    #: Feature / per-phase timing records captured when the query was first
    #: decided (the learned-scheduler training data); ``None`` on entries
    #: written before the records existed.
    features: Optional[dict] = None
    timings: Optional[dict] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.satisfiable

    @staticmethod
    def from_payload(payload: dict) -> "CachedRunResult":
        return CachedRunResult(
            satisfiable=bool(payload["satisfiable"]),
            witness=decode_trace(payload.get("witness")),
            bound=payload.get("bound"),
            loop_start=payload.get("loop_start"),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            complete=payload.get("complete"),
            winner=payload.get("winner"),
            sched=payload.get("sched"),
            features=payload.get("features"),
            timings=payload.get("timings"),
        )


# -- the cache ----------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss/store/eviction counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.stores, self.evictions)

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.stores - earlier.stores,
            self.evictions - earlier.evictions,
        )

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Two-level (memory + optional directory) store of decided queries.

    Disk entries live at ``<cache_dir>/<key[:2]>/<key>.json`` and are written
    atomically (temp file + :func:`os.replace`), so concurrent suite workers
    sharing a directory never observe torn writes — and because query results
    are deterministic, two workers racing on the same key write identical
    payloads.  Unreadable or corrupt entries are treated as misses.

    The memory layer is a bounded LRU (``memory_limit`` entries, ``None`` =
    unbounded): a directory-backed cache can always refill from disk, so
    evicting the least-recently-used payloads keeps long suite runs from
    holding every witness trace in RAM.  Memory-only caches default to
    unbounded — there is no disk layer to refill from.  Every lookup / store /
    eviction is mirrored into the process metrics registry
    (``result_cache.*``).
    """

    #: Default memory-layer bound of directory-backed caches.
    DEFAULT_MEMORY_LIMIT = 4096

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        *,
        memory_limit: Optional[int] = None,
    ):
        self.cache_dir = os.path.abspath(cache_dir) if cache_dir else None
        if memory_limit is None and self.cache_dir:
            memory_limit = self.DEFAULT_MEMORY_LIMIT
        self.memory_limit = memory_limit
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        # One cache instance is shared by racing portfolio threads and by the
        # service daemon's request handlers; the LRU bookkeeping
        # (move_to_end + popitem) is a multi-step mutation, so it runs under
        # a lock.  Disk I/O stays outside the lock — entry files are written
        # atomically and identical for a given key.
        self._memory_lock = threading.RLock()
        self.stats = CacheStats()
        if self.cache_dir:
            os.makedirs(self.cache_dir, exist_ok=True)

    def _path(self, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, key[:2], key + ".json")

    def _remember(self, key: str, payload: dict) -> None:
        with self._memory_lock:
            self._memory[key] = payload
            self._memory.move_to_end(key)
            if self.memory_limit is not None and len(self._memory) > self.memory_limit:
                self._memory.popitem(last=False)
                self.stats.evictions += 1
                metrics().inc("result_cache.evictions")

    def get(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or ``None`` (counted as hit/miss)."""
        with self._memory_lock:
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
        if payload is None and self.cache_dir:
            try:
                with open(self._path(key), "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                payload = None
            else:
                self._remember(key, payload)
        if payload is None:
            self.stats.misses += 1
            metrics().inc("result_cache.misses")
        else:
            self.stats.hits += 1
            metrics().inc("result_cache.hits")
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store a payload in memory and (when configured) on disk."""
        self._remember(key, payload)
        self.stats.stores += 1
        metrics().inc("result_cache.stores")
        if not self.cache_dir:
            return
        path = self._path(key)
        try:
            _atomic_write_json(path, payload)
        except OSError:  # pragma: no cover - disk full / permissions
            pass

    def __len__(self) -> int:
        return len(self._memory)

    def disk_entry_count(self) -> int:
        """Number of entries persisted under ``cache_dir`` (0 when memory-only)."""
        if not self.cache_dir:
            return 0
        count = 0
        for _, _, files in os.walk(self.cache_dir):
            count += sum(1 for name in files if name.endswith(".json") and not name.startswith("."))
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.cache_dir or "memory"
        return f"<ResultCache {where} entries={len(self._memory)} stats={self.stats}>"


# -- persistent per-directory statistics (the `specmatcher cache` CLI) --------

#: Sidecar file of cumulative hit counters; the leading dot keeps it out of
#: :meth:`ResultCache.disk_entry_count`.
STATS_FILENAME = ".stats.json"
#: Lock file guarding the sidecar's read-modify-write (POSIX flock).
STATS_LOCK_FILENAME = ".stats.lock"


def _atomic_write_json(path: str, payload: dict) -> None:
    """Write ``payload`` to ``path`` via temp file + :func:`os.replace`.

    The shared write path of cache entries and the stats sidecar: readers
    never observe a torn file.  Raises :class:`OSError` on failure; callers
    decide whether that is fatal.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", dir=directory or ".", prefix=".tmp-", suffix=".json",
        delete=False, encoding="utf-8",
    )
    try:
        with handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(handle.name, path)
    except OSError:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


@contextmanager
def _stats_lock(directory: str) -> Iterator[None]:
    """Hold the sidecar's flock while merging (no-op where flock is missing)."""
    if fcntl is None:  # pragma: no cover - non-POSIX
        yield
        return
    lock_path = os.path.join(directory, STATS_LOCK_FILENAME)
    try:
        fd = os.open(lock_path, os.O_WRONLY | os.O_CREAT, 0o644)
    except OSError:  # pragma: no cover - permissions
        yield
        return
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        except OSError:  # pragma: no cover
            pass
        os.close(fd)


def read_persistent_stats(cache_dir: str) -> Dict[str, int]:
    """Cumulative counters recorded for a cache directory (zeros if none)."""
    path = os.path.join(os.path.abspath(cache_dir), STATS_FILENAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        payload = {}
    return {
        "hits": int(payload.get("hits", 0)),
        "misses": int(payload.get("misses", 0)),
        "stores": int(payload.get("stores", 0)),
        "evictions": int(payload.get("evictions", 0)),
    }


def merge_persistent_stats(
    cache_dir: str,
    *,
    hits: int,
    misses: int,
    stores: int = 0,
    evictions: int = 0,
) -> Dict[str, int]:
    """Accumulate one run's counters into the directory's sidecar.

    The read-modify-write is serialised across processes with a ``flock`` on
    a lock file next to the sidecar, and the sidecar itself is replaced
    atomically — concurrent suite runs sharing a cache directory neither
    tear the file nor lose each other's increments.
    """
    directory = os.path.abspath(cache_dir)
    try:
        os.makedirs(directory, exist_ok=True)
    except OSError:  # pragma: no cover - permissions
        pass
    with _stats_lock(directory):
        totals = read_persistent_stats(directory)
        totals["hits"] += int(hits)
        totals["misses"] += int(misses)
        totals["stores"] += int(stores)
        totals["evictions"] += int(evictions)
        try:
            _atomic_write_json(os.path.join(directory, STATS_FILENAME), totals)
        except OSError:  # pragma: no cover - disk full / permissions
            pass
    return totals


def cache_dir_stats(cache_dir: str) -> Dict[str, object]:
    """Inspection summary of a cache directory: entries, bytes, hit counters."""
    directory = os.path.abspath(cache_dir)
    entries = 0
    size_bytes = 0
    for root, _, files in os.walk(directory):
        for name in files:
            if name.startswith("."):
                continue
            if not name.endswith(".json"):
                continue
            entries += 1
            try:
                size_bytes += os.path.getsize(os.path.join(root, name))
            except OSError:  # pragma: no cover - raced removal
                pass
    counters = read_persistent_stats(directory)
    lookups = counters["hits"] + counters["misses"]
    return {
        "dir": directory,
        "exists": os.path.isdir(directory),
        "entries": entries,
        "size_bytes": size_bytes,
        "hits": counters["hits"],
        "misses": counters["misses"],
        "stores": counters["stores"],
        "evictions": counters["evictions"],
        "hit_ratio": counters["hits"] / lookups if lookups else 0.0,
    }


def clear_cache_dir(cache_dir: str) -> int:
    """Delete every cache entry (and the stats sidecar) under ``cache_dir``.

    Returns the number of entries removed.  The directory itself and any
    foreign files are left alone; the in-memory layer of a live
    :class:`ResultCache` bound to the directory is dropped too.
    """
    directory = os.path.abspath(cache_dir)
    removed = 0
    for root, _, files in os.walk(directory):
        for name in files:
            if not name.endswith(".json"):
                continue
            is_entry = not name.startswith(".")
            if not is_entry and name != STATS_FILENAME:
                continue
            try:
                os.remove(os.path.join(root, name))
            except OSError:  # pragma: no cover - raced removal
                continue
            if is_entry:
                removed += 1
    cache = _DIR_CACHES.get(directory)
    if cache is not None:
        cache._memory.clear()
    return removed


# One ResultCache per directory per process, so every consumer of the same
# directory shares the in-memory layer (and its statistics).
_DIR_CACHES: Dict[str, ResultCache] = {}


def cache_for_dir(cache_dir: str) -> ResultCache:
    """The process-wide :class:`ResultCache` bound to a cache directory."""
    key = os.path.abspath(cache_dir)
    cache = _DIR_CACHES.get(key)
    if cache is None:
        cache = ResultCache(key)
        _DIR_CACHES[key] = cache
    return cache


# -- the active cache ---------------------------------------------------------

_active: Optional[ResultCache] = None


def active_result_cache() -> Optional[ResultCache]:
    """The cache the engines currently consult (``None`` disables caching)."""
    return _active


def set_result_cache(cache: Optional[ResultCache]) -> Optional[ResultCache]:
    """Install a new active cache (or ``None``); returns the previous one."""
    global _active
    previous = _active
    _active = cache
    return previous


@contextmanager
def using_result_cache(cache: Optional[ResultCache]) -> Iterator[Optional[ResultCache]]:
    """Temporarily install ``cache`` as the active result cache."""
    previous = set_result_cache(cache)
    try:
        yield cache
    finally:
        set_result_cache(previous)
