"""Batch coverage-suite subsystem: sharded parallel runner + result cache.

* :mod:`repro.runner.cache` — persistent decision-result cache keyed by
  stable structural fingerprints of (module, formulas, engine, backend,
  bound) queries; consulted by the coverage engines and the BMC search loop.
* :mod:`repro.runner.suite` — expansion of the designs catalog (plus seeded
  random designs) into independent shards, executed on a process pool with
  deterministic ordering, per-shard timeouts and a serial fallback.
* :mod:`repro.runner.report` — text / JSON / markdown suite reports.
"""

from .cache import (
    CachedRunResult,
    CacheStats,
    ResultCache,
    active_result_cache,
    cache_for_dir,
    expr_fingerprint,
    formula_fingerprint,
    module_fingerprint,
    query_key,
    set_result_cache,
    using_result_cache,
)
from .report import render_json, render_markdown, render_text, suite_to_dict
from .suite import CoverageJob, ShardResult, SuiteResult, execute_shard, expand_jobs, run_suite

__all__ = [
    "CachedRunResult",
    "CacheStats",
    "ResultCache",
    "active_result_cache",
    "cache_for_dir",
    "expr_fingerprint",
    "formula_fingerprint",
    "module_fingerprint",
    "query_key",
    "set_result_cache",
    "using_result_cache",
    "render_json",
    "render_markdown",
    "render_text",
    "suite_to_dict",
    "CoverageJob",
    "ShardResult",
    "SuiteResult",
    "execute_shard",
    "expand_jobs",
    "run_suite",
]
