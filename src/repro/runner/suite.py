"""Parallel sharded execution of the coverage suite.

The built-in ``check``/``analyze``/``table1`` commands evaluate one design at
a time, single-threaded.  This module restructures the workload instead of the
solver: the (design × spec conjunct × observed signal × engine) matrix is
expanded into independent **shards** (:class:`CoverageJob`), each answering one
decision query, and the shards are executed on a
:class:`~concurrent.futures.ProcessPoolExecutor` — or serially for debugging —
with

* **deterministic ordering**: jobs are sorted by their identity before
  submission and results are assembled in submission order, so shard order
  and every verdict are identical regardless of worker count or completion
  order (timings and per-shard cache counters naturally vary between runs —
  compare ``SuiteResult.verdicts()``, not raw reports);
* **per-shard timeouts**: each shard runs under a ``SIGALRM`` watchdog inside
  its worker, so one pathological query cannot stall the suite;
* **result caching**: every worker installs the shared persistent
  :class:`~repro.runner.cache.ResultCache`, so overlapping shards and repeated
  suite runs replay decided queries (per-shard hit/miss deltas are reported).

Shard kinds
-----------
``primary``
    The paper's primary coverage question (Theorem 1) for *one* architectural
    conjunct of a design.
``signal``
    Observability of one interface signal under the RTL specification: "is
    there a run admitted by ``R`` on which the signal eventually rises?" — a
    per-signal sanity query that catches dead interface signals and widens the
    decided-query set the cache can reuse.
"""

from __future__ import annotations

import os
import signal as _signal
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.spec import CoverageProblem
from ..designs.catalog import get_design
from ..designs.random import RandomDesignSpec, random_problem
from ..engines.coverage import get_engine
from ..engines.prop import using_prop_backend
from ..ltl.ast import Atom, Eventually
from ..obs import PhaseAggregator
from .cache import CacheStats, ResultCache, cache_for_dir, set_result_cache, using_result_cache

__all__ = [
    "CoverageJob",
    "ShardResult",
    "SuiteResult",
    "expand_jobs",
    "run_suite",
]


@dataclass(frozen=True)
class CoverageJob:
    """One shard of the coverage suite (plain data, picklable).

    ``design`` names a catalog entry unless ``random_spec`` is set, in which
    case the worker rebuilds the design deterministically from the spec — a
    worker never depends on mutations of the parent's catalog.
    """

    design: str
    kind: str  # "primary" | "signal"
    target: str  # conjunct index (as text) or signal name
    index: int  # architectural conjunct index (0 for signal shards)
    engine: str = "explicit"
    prop_backend: str = "auto"
    bound: int = 12
    #: ``True`` / ``False`` / ``"auto"`` (see :mod:`repro.problem`).
    slicing: object = "auto"
    random_spec: Optional[RandomDesignSpec] = None
    #: Path of a trained scheduler model (the ``auto`` engine; other engines
    #: ignore it).
    sched_model: Optional[str] = None

    @property
    def job_id(self) -> str:
        return f"{self.design}/{self.kind}/{self.target}"

    def sort_key(self) -> Tuple[str, str, int, str]:
        return (self.design, self.kind, self.index, self.target)

    def problem(self) -> CoverageProblem:
        """This shard's coverage problem (built once per design per process).

        A design contributes one shard per conjunct plus one per interface
        signal; memoising the build means the netlist construction — and, for
        random designs, the rejection-sampling model checks — run once per
        process instead of once per shard.  Shards only read the problem, so
        sharing the instance is safe.
        """
        return _build_problem(self.design, self.random_spec)


@lru_cache(maxsize=256)
def _build_problem(design: str, random_spec: Optional[RandomDesignSpec]) -> CoverageProblem:
    if random_spec is not None:
        return random_problem(random_spec)
    return get_design(design).builder()


@dataclass
class ShardResult:
    """Outcome of one shard."""

    job: CoverageJob
    status: str  # "ok" | "error" | "timeout"
    verdict: Optional[bool]  # primary: covered; signal: observable
    complete: bool = True
    elapsed_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    cache_evictions: int = 0
    detail: str = ""
    worker_pid: int = 0
    #: The member engine that produced the verdict (portfolio/auto shards).
    winner: Optional[str] = None
    #: Feature record of this shard's compiled query (coi_size, registers,
    #: automaton_states, bound, ...) — the learned-scheduler substrate.
    features: Optional[Dict[str, object]] = None
    #: Span name → wall seconds spent per phase while deciding this shard.
    timings: Optional[Dict[str, float]] = None
    #: Scheduler record (portfolio/auto shards): race mode, predicted
    #: ranking, confidence, hit.
    sched: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def row(self) -> Dict[str, object]:
        """JSON-ready representation (stable field order)."""
        return {
            "job": self.job.job_id,
            "design": self.job.design,
            "kind": self.job.kind,
            "target": self.job.target,
            "engine": self.job.engine,
            "status": self.status,
            "verdict": self.verdict,
            "complete": self.complete,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_stores": self.cache_stores,
            "detail": self.detail,
            "winner": self.winner,
            "features": self.features,
            "timings": self.timings,
            "sched": self.sched,
        }


@dataclass
class SuiteResult:
    """Aggregate outcome of one suite run."""

    shards: List[ShardResult] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0
    cache_enabled: bool = True
    cache_dir: Optional[str] = None

    @property
    def cache_hits(self) -> int:
        return sum(shard.cache_hits for shard in self.shards)

    @property
    def cache_misses(self) -> int:
        return sum(shard.cache_misses for shard in self.shards)

    @property
    def cache_stores(self) -> int:
        return sum(shard.cache_stores for shard in self.shards)

    @property
    def cache_evictions(self) -> int:
        return sum(shard.cache_evictions for shard in self.shards)

    @property
    def cache_hit_ratio(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def verdicts(self) -> Dict[str, Optional[bool]]:
        """Job-id → verdict map (the reproducibility contract between runs)."""
        return {shard.job.job_id: shard.verdict for shard in self.shards}

    def counts(self) -> Dict[str, int]:
        tally = {"ok": 0, "error": 0, "timeout": 0}
        for shard in self.shards:
            tally[shard.status] = tally.get(shard.status, 0) + 1
        return tally

    @property
    def succeeded(self) -> bool:
        return all(shard.ok for shard in self.shards)


def expand_jobs(
    designs: Optional[Sequence[str]] = None,
    *,
    engine: str = "explicit",
    prop_backend: str = "auto",
    bound: int = 12,
    slicing="auto",
    include_signals: bool = True,
    random_count: int = 0,
    random_seed: int = 0,
    random_sizes: Optional[dict] = None,
    sched_model: Optional[str] = None,
) -> List[CoverageJob]:
    """Expand the catalog (plus random designs) into independent shards.

    One ``primary`` shard per architectural conjunct of every design, plus one
    ``signal`` shard per interface signal of its concrete modules.  The result
    is sorted by job identity — the canonical, reproducible suite order.
    """
    from ..designs.catalog import design_names
    from ..designs.random import random_design_entries

    jobs: List[CoverageJob] = []

    def add_design(name: str, problem: CoverageProblem, spec: Optional[RandomDesignSpec]) -> None:
        common = dict(
            design=name,
            engine=engine,
            prop_backend=prop_backend,
            bound=bound,
            slicing=slicing,
            random_spec=spec,
            sched_model=sched_model,
        )
        for index in range(len(problem.architectural)):
            jobs.append(CoverageJob(kind="primary", target=str(index), index=index, **common))
        if include_signals and problem.has_concrete_modules():
            for signal_name in sorted(set(problem.composed_module().interface_signals())):
                jobs.append(CoverageJob(kind="signal", target=signal_name, index=0, **common))

    names = sorted(designs) if designs is not None else design_names()
    for name in names:
        spec = get_design(name).random_spec
        add_design(name, _build_problem(name, spec), spec)
    for entry in random_design_entries(random_count, random_seed, **(random_sizes or {})):
        add_design(entry.name, _build_problem(entry.name, entry.random_spec), entry.random_spec)

    return sorted(jobs, key=CoverageJob.sort_key)


# -- shard execution ----------------------------------------------------------


class _ShardTimeout(Exception):
    """Raised inside a worker when a shard exceeds its time budget."""


def _alarm_handler(signum, frame):  # pragma: no cover - exercised via timeouts
    raise _ShardTimeout()


def _answer(
    job: CoverageJob,
) -> Tuple[bool, bool, str, Optional[str], Optional[dict], Optional[dict]]:
    """Decide one shard.

    Returns ``(verdict, complete, detail, winner, features, sched)``.
    """
    problem = job.problem()
    engine = get_engine(
        job.engine,
        max_bound=job.bound,
        slicing=job.slicing,
        model_path=job.sched_model,
    )
    with using_prop_backend(job.prop_backend):
        if job.kind == "primary":
            verdict = engine.check_primary(
                problem, architectural=problem.architectural[job.index]
            )
            features = _shard_features(verdict.features, job)
            return (
                bool(verdict.covered),
                bool(verdict.complete),
                "",
                verdict.winner,
                features,
                verdict.sched,
            )
        if job.kind == "signal":
            module = problem.composed_module()
            formulas = problem.all_rtl_formulas() + [Eventually(Atom(job.target))]
            # Compile explicitly (memoized, so free when find_run recompiles)
            # so the shard row carries the query's feature record.
            compiled = engine.compile(module, formulas, observe=(job.target,))
            features = _shard_features(compiled.features(bound=job.bound), job)
            result = engine.find_run(compiled)
            observable = bool(result.satisfiable)
            result_complete = getattr(result, "complete", None)
            if result_complete is None:
                result_complete = engine.complete
            # "never observable" is definitive only on a complete verdict.
            return (
                observable,
                result_complete or observable,
                "",
                getattr(result, "winner", None),
                features,
                getattr(result, "sched", None),
            )
    raise ValueError(f"unknown shard kind {job.kind!r}")


def _shard_features(features: Optional[dict], job: CoverageJob) -> Optional[dict]:
    """Fill the job's bound into a feature record when the engine has none.

    Complete engines key their caches without a bound, so their feature
    records carry ``bound=None``; the scheduler substrate still wants the
    configured suite bound for every row.
    """
    if features is None:
        return None
    if features.get("bound") is None:
        features = dict(features)
        features["bound"] = job.bound
    return features


def execute_shard(job: CoverageJob, timeout: Optional[float] = None) -> ShardResult:
    """Run one shard in the current process under the active result cache.

    ``timeout`` (seconds) arms a ``SIGALRM`` watchdog where the platform
    supports it; a fired watchdog yields a ``timeout`` shard instead of
    aborting the suite.
    """
    cache = _current_cache()
    before = cache.stats.snapshot() if cache else CacheStats()
    start = time.perf_counter()
    status, verdict, complete, detail, winner = "ok", None, True, "", None
    features: Optional[dict] = None
    timings: Optional[dict] = None
    sched: Optional[dict] = None
    import threading

    use_alarm = (
        timeout is not None
        and timeout > 0
        and hasattr(_signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    previous_handler = None
    try:
        # The timer is armed inside this try and disarmed in the *inner*
        # finally, so an alarm firing at any point — even in the arming window
        # before _answer starts, or just after it returns — lands in the
        # except clause below and is recorded as a timeout instead of escaping
        # and killing the suite.  Once the inner finally completes no further
        # alarm can fire, so the except bodies run unarmed.
        if use_alarm:
            previous_handler = _signal.signal(_signal.SIGALRM, _alarm_handler)
            # Armed with a repeat interval: if the first alarm lands in a
            # frame whose exception is swallowed (e.g. a GC callback raises
            # it as "unraisable"), the timer re-fires until the watchdog is
            # disarmed, so a timed-out shard cannot sneak through as "ok".
            _signal.setitimer(_signal.ITIMER_REAL, timeout, 0.05)
        try:
            # The aggregator collects every span closed while this shard
            # decides — engine phases, compile, SAT — into the per-query
            # ``timings`` record, with or without a --trace exporter.
            with PhaseAggregator() as phases:
                verdict, complete, detail, winner, features, sched = _answer(job)
            timings = phases.timings()
        finally:
            if use_alarm:
                _signal.setitimer(_signal.ITIMER_REAL, 0)
    except _ShardTimeout:
        status, detail = "timeout", f"exceeded {timeout:.1f}s"
    except Exception as exc:  # noqa: BLE001 - a shard failure must not kill the suite
        status, detail = "error", f"{type(exc).__name__}: {exc}"
    finally:
        if previous_handler is not None:
            _signal.signal(_signal.SIGALRM, previous_handler)
    elapsed = time.perf_counter() - start
    delta = cache.stats.delta(before) if cache else CacheStats()
    return ShardResult(
        job=job,
        status=status,
        verdict=verdict if status == "ok" else None,
        complete=complete,
        elapsed_seconds=elapsed,
        cache_hits=delta.hits,
        cache_misses=delta.misses,
        cache_stores=delta.stores,
        cache_evictions=delta.evictions,
        detail=detail,
        worker_pid=os.getpid(),
        winner=winner if status == "ok" else None,
        features=features if status == "ok" else None,
        timings=timings if status == "ok" else None,
        sched=sched if status == "ok" else None,
    )


def _current_cache() -> Optional[ResultCache]:
    from .cache import active_result_cache

    return active_result_cache()


def _select_cache(cache_dir: Optional[str], use_cache: bool) -> Optional[ResultCache]:
    """The cache a suite run (or worker) should use.

    Without a directory, an already-active cache is *reused* (matching
    :func:`repro.core.coverage.result_cache_context` semantics: a caller who
    installed a cache keeps its warm entries) and only falls back to a fresh
    in-memory cache when none is active.
    """
    if not use_cache:
        return None
    if cache_dir:
        return cache_for_dir(cache_dir)
    from .cache import active_result_cache

    return active_result_cache() or ResultCache()


def _worker_init(
    cache_dir: Optional[str], use_cache: bool, trace: Optional[str] = None
) -> None:
    """Per-worker setup: install the result cache and the trace exporter.

    Workers append to the *same* trace file as the parent (O_APPEND keeps
    lines whole) and flush their own metrics record at process exit.
    """
    set_result_cache(_select_cache(cache_dir, use_cache))
    if trace:
        from ..obs import install_trace_exporter

        install_trace_exporter(trace)


def _worker_shard(job: CoverageJob, timeout: Optional[float]) -> ShardResult:
    return execute_shard(job, timeout)


def run_suite(
    jobs: Sequence[CoverageJob],
    *,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    shard_timeout: Optional[float] = None,
    trace: Optional[str] = None,
) -> SuiteResult:
    """Execute the shards and assemble a :class:`SuiteResult`.

    ``workers <= 1`` runs serially in-process (the debugging fallback: plain
    tracebacks, no subprocesses); otherwise shards are distributed over a
    process pool whose workers share the persistent cache directory.  Results
    are always assembled in canonical job order.  ``trace`` names a JSONL
    file every worker appends its spans (and final metrics record) to.
    """
    ordered = sorted(jobs, key=CoverageJob.sort_key)
    if trace:
        from ..obs import install_trace_exporter

        install_trace_exporter(trace)
    start = time.perf_counter()
    if workers <= 1:
        with using_result_cache(_select_cache(cache_dir, use_cache)):
            shards = [execute_shard(job, shard_timeout) for job in ordered]
    else:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(cache_dir, use_cache, trace),
        ) as pool:
            futures = [pool.submit(_worker_shard, job, shard_timeout) for job in ordered]
            shards = [future.result() for future in futures]
    wall = time.perf_counter() - start
    result = SuiteResult(
        shards=shards,
        workers=max(1, workers),
        wall_seconds=wall,
        cache_enabled=use_cache,
        cache_dir=os.path.abspath(cache_dir) if cache_dir else None,
    )
    if use_cache and cache_dir:
        # Accumulate this run's counters into the directory sidecar the
        # `specmatcher cache stats` subcommand reports.
        from .cache import merge_persistent_stats

        merge_persistent_stats(
            cache_dir,
            hits=result.cache_hits,
            misses=result.cache_misses,
            stores=result.cache_stores,
            evictions=result.cache_evictions,
        )
    return result
