"""Rendering of suite results: text, JSON and markdown reports.

The JSON shape is the machine contract used by CI (cache-effectiveness
assertions) and by the benchmark harness; the markdown table is meant for
dropping into PRs/issues; the text form is the default CLI output.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .suite import ShardResult, SuiteResult

__all__ = ["suite_to_dict", "render_json", "render_markdown", "render_text"]


def _verdict_text(shard: ShardResult) -> str:
    if shard.status != "ok":
        return shard.status.upper()
    if shard.job.kind == "primary":
        text = "covered" if shard.verdict else "gap"
    else:
        text = "observable" if shard.verdict else "dead"
    if not shard.complete:
        text += "*"  # bounded verdict (BMC below the diameter)
    return text


def suite_to_dict(result: SuiteResult) -> Dict[str, object]:
    """The canonical JSON-ready representation of a suite run."""
    counts = result.counts()
    return {
        "workers": result.workers,
        "wall_seconds": round(result.wall_seconds, 4),
        "shard_count": len(result.shards),
        "counts": counts,
        "cache": {
            "enabled": result.cache_enabled,
            "dir": result.cache_dir,
            "hits": result.cache_hits,
            "misses": result.cache_misses,
            "hit_ratio": round(result.cache_hit_ratio, 4),
        },
        "verdicts": {job_id: verdict for job_id, verdict in sorted(result.verdicts().items())},
        "shards": [shard.row() for shard in result.shards],
    }


def render_json(result: SuiteResult) -> str:
    return json.dumps(suite_to_dict(result), indent=2, sort_keys=False)


def render_markdown(result: SuiteResult) -> str:
    lines: List[str] = [
        "# Coverage suite report",
        "",
        f"- shards: {len(result.shards)} ({result.workers} worker(s), "
        f"{result.wall_seconds:.2f} s wall)",
        f"- cache: {'on' if result.cache_enabled else 'off'}"
        + (f" ({result.cache_dir})" if result.cache_dir else "")
        + f", {result.cache_hits} hits / {result.cache_misses} misses "
        f"({100.0 * result.cache_hit_ratio:.1f}% hit ratio)",
        "",
        "| design | kind | target | verdict | time (s) | cache h/m |",
        "|---|---|---|---|---:|---:|",
    ]
    for shard in result.shards:
        lines.append(
            f"| {shard.job.design} | {shard.job.kind} | {shard.job.target} "
            f"| {_verdict_text(shard)} | {shard.elapsed_seconds:.3f} "
            f"| {shard.cache_hits}/{shard.cache_misses} |"
        )
    return "\n".join(lines)


def render_text(result: SuiteResult) -> str:
    counts = result.counts()
    lines: List[str] = [
        f"== coverage suite: {len(result.shards)} shards, "
        f"{result.workers} worker(s), {result.wall_seconds:.2f} s wall ==",
    ]
    width = max((len(shard.job.job_id) for shard in result.shards), default=0)
    for shard in result.shards:
        lines.append(
            f"{shard.job.job_id:<{width}}  {_verdict_text(shard):<12} "
            f"{shard.elapsed_seconds:7.3f} s  cache {shard.cache_hits}/{shard.cache_misses}"
        )
    lines.append(
        f"status: {counts['ok']} ok, {counts['error']} error, {counts['timeout']} timeout"
    )
    if result.cache_enabled:
        lines.append(
            f"cache : {result.cache_hits} hits / {result.cache_misses} misses "
            f"({100.0 * result.cache_hit_ratio:.1f}% hit ratio)"
            + (f" at {result.cache_dir}" if result.cache_dir else " (in-memory)")
        )
    else:
        lines.append("cache : disabled")
    lines.append("(* = bounded verdict: holds up to the BMC bound only)")
    return "\n".join(lines)
