"""Rendering of suite results: text, JSON and markdown reports.

The JSON shape is the machine contract used by CI (cache-effectiveness
assertions) and by the benchmark harness; the markdown table is meant for
dropping into PRs/issues; the text form is the default CLI output.

``suite --profile`` adds a per-design phase breakdown built from the shard
``timings`` records (:func:`profile_suite`): total wall seconds per span name
per design, and the slowest phase of each — the "where did the time go"
answer BENCH_engines.json could not give.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .suite import ShardResult, SuiteResult

__all__ = [
    "suite_to_dict",
    "render_json",
    "render_markdown",
    "render_text",
    "profile_suite",
]

#: Wrapper spans excluded from "slowest phase": they enclose the real work
#: phases and would otherwise always win.
_WRAPPER_PHASES = frozenset({"engine_run"})


def profile_suite(result: SuiteResult) -> Dict[str, object]:
    """Per-design, per-phase wall-time breakdown of a suite run.

    Sums the ``timings`` records of every ok shard by design and span name,
    and names each design's ``slowest_phase`` (wrapper spans such as
    ``engine_run`` are excluded from the ranking but kept in the table).
    """
    designs: Dict[str, Dict[str, float]] = {}
    untimed = 0
    for shard in result.shards:
        if not shard.ok:
            continue
        if not shard.timings:
            untimed += 1
            continue
        table = designs.setdefault(shard.job.design, {})
        for name, seconds in shard.timings.items():
            table[name] = round(table.get(name, 0.0) + seconds, 6)
    profile: Dict[str, object] = {"designs": {}, "untimed_shards": untimed}
    for design in sorted(designs):
        table = designs[design]
        ranked = [
            (name, seconds)
            for name, seconds in table.items()
            if name not in _WRAPPER_PHASES
        ]
        slowest = max(ranked, key=lambda item: item[1], default=None)
        profile["designs"][design] = {
            "phases": dict(sorted(table.items())),
            "slowest_phase": slowest[0] if slowest else None,
            "slowest_seconds": round(slowest[1], 6) if slowest else 0.0,
        }
    return profile


def _verdict_text(shard: ShardResult) -> str:
    if shard.status != "ok":
        return shard.status.upper()
    if shard.job.kind == "primary":
        text = "covered" if shard.verdict else "gap"
    else:
        text = "observable" if shard.verdict else "dead"
    if not shard.complete:
        text += "*"  # bounded verdict (BMC below the diameter)
    return text


def suite_to_dict(result: SuiteResult, *, profile: bool = False) -> Dict[str, object]:
    """The canonical JSON-ready representation of a suite run."""
    counts = result.counts()
    payload = {
        "workers": result.workers,
        "wall_seconds": round(result.wall_seconds, 4),
        "shard_count": len(result.shards),
        "counts": counts,
        "cache": {
            "enabled": result.cache_enabled,
            "dir": result.cache_dir,
            "hits": result.cache_hits,
            "misses": result.cache_misses,
            "stores": result.cache_stores,
            "evictions": result.cache_evictions,
            "hit_ratio": round(result.cache_hit_ratio, 4),
        },
        "verdicts": {job_id: verdict for job_id, verdict in sorted(result.verdicts().items())},
        "shards": [shard.row() for shard in result.shards],
    }
    if profile:
        payload["profile"] = profile_suite(result)
    return payload


def render_json(result: SuiteResult, *, profile: bool = False) -> str:
    return json.dumps(suite_to_dict(result, profile=profile), indent=2, sort_keys=False)


def _profile_lines_markdown(result: SuiteResult) -> List[str]:
    profile = profile_suite(result)
    lines = [
        "",
        "## Profile (per design, wall seconds per phase)",
        "",
        "| design | slowest phase | s | phases |",
        "|---|---|---:|---|",
    ]
    for design, entry in profile["designs"].items():
        phase_text = ", ".join(
            f"{name}={seconds:.3f}" for name, seconds in entry["phases"].items()
        )
        lines.append(
            f"| {design} | {entry['slowest_phase'] or '-'} "
            f"| {entry['slowest_seconds']:.3f} | {phase_text} |"
        )
    return lines


def render_markdown(result: SuiteResult, *, profile: bool = False) -> str:
    lines: List[str] = [
        "# Coverage suite report",
        "",
        f"- shards: {len(result.shards)} ({result.workers} worker(s), "
        f"{result.wall_seconds:.2f} s wall)",
        f"- cache: {'on' if result.cache_enabled else 'off'}"
        + (f" ({result.cache_dir})" if result.cache_dir else "")
        + f", {result.cache_hits} hits / {result.cache_misses} misses "
        f"({100.0 * result.cache_hit_ratio:.1f}% hit ratio)",
        "",
        "| design | kind | target | verdict | time (s) | cache h/m |",
        "|---|---|---|---|---:|---:|",
    ]
    for shard in result.shards:
        lines.append(
            f"| {shard.job.design} | {shard.job.kind} | {shard.job.target} "
            f"| {_verdict_text(shard)} | {shard.elapsed_seconds:.3f} "
            f"| {shard.cache_hits}/{shard.cache_misses} |"
        )
    if profile:
        lines.extend(_profile_lines_markdown(result))
    return "\n".join(lines)


def _profile_lines_text(result: SuiteResult) -> List[str]:
    profile = profile_suite(result)
    lines = ["", "-- profile (wall seconds per phase, per design) --"]
    designs = profile["designs"]
    if not designs:
        lines.append("(no timed shards)")
        return lines
    width = max(len(design) for design in designs)
    for design, entry in designs.items():
        phase_text = "  ".join(
            f"{name}={seconds:.3f}" for name, seconds in entry["phases"].items()
        )
        lines.append(f"{design:<{width}}  {phase_text}")
        if entry["slowest_phase"]:
            lines.append(
                f"{'':<{width}}  slowest: {entry['slowest_phase']} "
                f"({entry['slowest_seconds']:.3f} s)"
            )
    return lines


def render_text(result: SuiteResult, *, profile: bool = False) -> str:
    counts = result.counts()
    lines: List[str] = [
        f"== coverage suite: {len(result.shards)} shards, "
        f"{result.workers} worker(s), {result.wall_seconds:.2f} s wall ==",
    ]
    width = max((len(shard.job.job_id) for shard in result.shards), default=0)
    for shard in result.shards:
        lines.append(
            f"{shard.job.job_id:<{width}}  {_verdict_text(shard):<12} "
            f"{shard.elapsed_seconds:7.3f} s  cache {shard.cache_hits}/{shard.cache_misses}"
        )
    lines.append(
        f"status: {counts['ok']} ok, {counts['error']} error, {counts['timeout']} timeout"
    )
    if result.cache_enabled:
        lines.append(
            f"cache : {result.cache_hits} hits / {result.cache_misses} misses "
            f"({100.0 * result.cache_hit_ratio:.1f}% hit ratio)"
            + (f" at {result.cache_dir}" if result.cache_dir else " (in-memory)")
        )
    else:
        lines.append("cache : disabled")
    if profile:
        lines.extend(_profile_lines_text(result))
    lines.append("(* = bounded verdict: holds up to the BMC bound only)")
    return "\n".join(lines)
