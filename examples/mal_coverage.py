#!/usr/bin/env python3
"""Example 1 of the paper: the Memory Arbitration Logic (Figure 2) is covered.

The priority arbiter ``PrA`` is specified only by properties, the masking glue
``M1`` and the cache access logic ``L1`` are given as concrete RTL.
SpecMatcher answers the primary coverage question (Theorem 1): the
architectural priority property *is* covered by the decomposition.

Run with::

    python examples/mal_coverage.py
"""

from repro.core import coverage_hole, format_report, analyze_problem, CoverageOptions
from repro.designs import build_mal
from repro.ltl import to_str


def main() -> None:
    problem = build_mal()
    print(problem.summary())
    print()
    print("architectural intent:")
    for formula in problem.architectural:
        print("  ", to_str(formula))
    print("RTL properties of PrA (the arbiter is specified, not implemented):")
    for formula in problem.rtl_properties:
        print("  ", to_str(formula))
    print("assumptions:")
    for formula in problem.assumptions:
        print("  ", to_str(formula))
    print("concrete modules:", [m.name for m in problem.concrete_modules])
    print()

    # T_M of the concrete modules (Definition 4) — printed for inspection.
    hole = coverage_hole(problem)
    for tm in hole.tm_results:
        kind = "combinational" if tm.combinational else f"{tm.fsm.state_count()}-state FSM"
        print(f"T_{tm.module_name} ({kind}):")
        print("  ", to_str(tm.formula))
    print()

    report = analyze_problem(problem, CoverageOptions(max_witnesses=2))
    print(format_report(report))


if __name__ == "__main__":
    main()
