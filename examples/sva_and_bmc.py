#!/usr/bin/env python3
"""Author properties in SVA style and cross-check the three verification engines.

This example shows the two convenience layers added around the core coverage
flow:

* the :mod:`repro.sva` front-end, so RTL properties can be written the way a
  validation engineer would write SystemVerilog Assertions (``|->``, ``##n``
  delays, ``[*n]`` repetition) and are desugared to the LTL the tool uses, and
* the :mod:`repro.bmc` SAT-based engine, used here both to answer the primary
  coverage question (Theorem 1) and to prove a supporting invariant of the
  cache logic by k-induction.

Run with::

    python examples/sva_and_bmc.py
"""

from repro.bmc import bmc_primary_coverage, prove_invariant
from repro.core import SpecMatcher
from repro.core.primary import primary_coverage_check
from repro.designs.mal import (
    architectural_property,
    build_cache_logic,
    build_masking_glue_fig4,
    environment_assumption,
)
from repro.sva import parse_sva


def main() -> None:
    # The Figure-4 arbiter specification, written as SVA instead of raw LTL.
    arbiter_sva = [
        "always (n1 |=> g1)",
        "always (!n1 & n2 |=> g2)",
        "always (g1 ##0 g2 |-> 0)",   # grants are mutually exclusive
    ]

    matcher = SpecMatcher("MAL (Fig 4) via SVA")
    matcher.add_architectural_property(architectural_property())
    matcher.add_assumption(environment_assumption())
    for text in arbiter_sva:
        prop = parse_sva(text)
        print(f"SVA   : {prop}")
        print(f"  LTL : {prop.to_ltl()}")
        matcher.add_rtl_property(prop.to_ltl())
    matcher.add_rtl_property("G(X g1 -> n1)")
    matcher.add_rtl_property("G(X g2 -> (!n1 & n2))")
    matcher.add_rtl_property("!g1 & !g2")
    matcher.add_concrete_module(build_masking_glue_fig4())
    matcher.add_concrete_module(build_cache_logic())

    print()
    explicit = primary_coverage_check(matcher.problem)
    print(f"explicit-state engine : covered = {explicit.covered} "
          f"({explicit.elapsed_seconds:.3f}s)")

    bounded = bmc_primary_coverage(matcher.problem, max_bound=6)
    print(f"SAT-based BMC engine  : {bounded.summary()}")

    from repro.engines import get_engine

    symbolic = get_engine("symbolic").check_primary(matcher.problem)
    print(f"symbolic BDD engine   : covered = {symbolic.covered} "
          f"({symbolic.elapsed_seconds:.3f}s, complete proof)")

    # A supporting invariant of the cache access logic, proved by k-induction.
    from repro.ltl.parser import parse

    result = prove_invariant(build_cache_logic(), parse("G !(d1 & d2)"), max_k=4)
    print(f"cache invariant !(d1 & d2): {result.summary()}")


if __name__ == "__main__":
    main()
