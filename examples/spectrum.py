#!/usr/bin/env python3
"""What lies between design intent coverage and model checking?

The paper's title question, answered on its own motivating example.  The
Memory Arbitration Logic decomposition (arbiter described by properties,
masking glue and cache given as RTL) is evaluated at the three points of the
methodology spectrum:

* **pure design intent coverage** (ICCAD 2004): properties only — the glue
  logic cannot contribute, so the Figure-2 decomposition cannot be proved;
* **intent coverage with RTL blocks** (this paper): the glue is admitted into
  the analysis and the decomposition is proved (Figure 2) or refuted with a
  concrete witness (Figure 4);
* **full model checking**: the architectural intent checked on the complete
  RTL — the capacity-limited task the methodology is designed to avoid (fine
  for this toy, impossible for the designs the paper targets).

Run with::

    python examples/spectrum.py
"""

from repro.core import compare_spectrum
from repro.designs.mal import (
    build_full_mal_fig2,
    build_full_mal_fig4,
    build_mal,
    build_mal_with_gap,
)


def main() -> None:
    for title, problem_builder, full_builder in [
        ("Figure 2 wiring (the decomposition is sound)", build_mal, build_full_mal_fig2),
        ("Figure 4 wiring (a gap hides in the decomposition)", build_mal_with_gap, build_full_mal_fig4),
    ]:
        print("=" * 72)
        print(title)
        print("=" * 72)
        comparison = compare_spectrum(problem_builder(), full_builder())
        print(comparison.describe())
        full = comparison.full
        print(
            f"full model checking explored {full.statistics.product_states} product states "
            "over the complete RTL; the coverage analysis only ever model-checks the "
            "concrete glue blocks."
        )
        if not comparison.hybrid.covered and comparison.hybrid.witness is not None:
            print("\nRefuting run found by the coverage analysis (first cycles):")
            table = comparison.hybrid.witness.to_table(6)
            for signal in ("r1", "r2", "hit", "wait", "d1", "d2"):
                if signal in table:
                    cells = " ".join("1" if value else "." for value in table[signal])
                    print(f"  {signal:>5}: {cells}")
        print()


if __name__ == "__main__":
    main()
