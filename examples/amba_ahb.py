#!/usr/bin/env python3
"""AMBA AHB arbitration: a system-level property against arbiter RTL + properties.

Mirrors the paper's third Table-1 experiment: the arbiter is given as RTL, the
masters and the slave are specified by 29 properties.  Two system-level
properties are analysed:

* ``G(hbusreq1 -> F hgrant1)`` — covered (priority master),
* ``G(hbusreq2 -> F hgrant2)`` — not covered (the low-priority master can
  starve); SpecMatcher reports the gap and a weakened property that closes it.

Run with::

    python examples/amba_ahb.py
"""

from repro.core import CoverageOptions, find_coverage_gap, format_gap_analysis
from repro.designs import build_amba_problem
from repro.ltl import to_str


def main() -> None:
    problem = build_amba_problem()
    print(problem.summary())
    print("concrete module:", problem.concrete_modules[0].summary())
    print()

    options = CoverageOptions(max_witnesses=2, max_closure_checks=12, max_reported_gaps=2)
    for target in problem.architectural:
        print("=" * 72)
        print("architectural property:", to_str(target))
        analysis = find_coverage_gap(problem, target, options)
        print(format_gap_analysis(analysis))
        print()


if __name__ == "__main__":
    main()
