#!/usr/bin/env python3
"""Example 3 / Figure 5 of the paper: FSM extraction and the T_M formula.

A simple latched AND gate is turned into its FSM and then into the
characteristic LTL formula ``T_M`` of Definition 4, matching the minimised
formula printed in the paper's Example 3.

Run with::

    python examples/fsm_extraction.py
"""

from repro.core import build_tm
from repro.designs import build_simple_latch, expected_tm_shape
from repro.ltl import equivalent, to_str
from repro.rtl import extract_fsm


def main() -> None:
    module = build_simple_latch()
    print(module.summary())

    fsm = extract_fsm(module)
    print(fsm.summary())
    for state in fsm.states:
        marker = "(initial)" if state.index == fsm.initial_state else ""
        print(f"  state {state.index}: L(s) = {state.cube().to_str()} {marker}")
    for transition in fsm.transitions:
        print(
            f"  {transition.source} --[{transition.guard.to_str()}]--> {transition.target}"
        )

    result = build_tm(module)
    print()
    print("T_M =", to_str(result.formula))
    print("matches the paper's Example 3 formula:",
          equivalent(result.formula, expected_tm_shape()))


if __name__ == "__main__":
    main()
