#!/usr/bin/env python3
"""Quickstart: check a property decomposition with SpecMatcher.

We specify a tiny design by hand:

* architectural intent: whenever a request arrives while the unit is idle,
  the acknowledge eventually follows,
* RTL specification: a property of the front-end (requests are latched into
  ``pend``) plus the *concrete RTL* of the acknowledge generator,
* SpecMatcher decides whether the decomposition is sound (Theorem 1) and, if
  not, shows the coverage gap.

Run with::

    python examples/quickstart.py
"""

from repro.core import SpecMatcher, CoverageOptions, format_report

ACK_UNIT = """
module ack_unit(input pend, input ready, output ack);
  reg served init 0;
  served <= (pend & ready) | (served & pend);
  assign ack = pend & ready;
endmodule
"""


def main() -> None:
    matcher = SpecMatcher("quickstart", CoverageOptions(max_witnesses=2, max_closure_checks=8))

    # Architectural intent over the unit's interface.
    matcher.add_architectural_property("G(req & !busy -> F ack)")

    # RTL properties of the sub-module we did not include as RTL (the request
    # front-end): it latches requests into `pend` and keeps them pending.
    matcher.add_rtl_property("G(req & !busy -> X pend)")
    matcher.add_rtl_property("G(pend & !ack -> X pend)")
    matcher.add_rtl_property("G(busy -> pend | !pend)")

    # Environment assumption: the downstream consumer is eventually ready.
    matcher.add_assumption("G F ready")

    # The acknowledge generator is given as concrete RTL (glue logic).
    matcher.add_concrete_module(ACK_UNIT)

    print(matcher.summary())
    report = matcher.run()
    print(format_report(report))

    if report.covered:
        print("The decomposition is sound: the RTL specification covers the intent.")
    else:
        print("The decomposition has a coverage gap; see the properties above.")


if __name__ == "__main__":
    main()
