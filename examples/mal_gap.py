#!/usr/bin/env python3
"""Example 2 of the paper: the Figure 4 wiring has a coverage gap.

Moving the masking glue in front of the arbiter opens a one-cycle window in
which a later ``r2`` request can be granted while the earlier ``r1`` request is
still waiting for its cache refill; if the ``r2`` lookup hits, ``d2`` arrives
before ``d1`` and the architectural priority property is violated even though
every RTL property holds.  SpecMatcher finds the gap, shows the witness run,
the uncovered terms, and a structure-preserving gap property that closes it.

Run with::

    python examples/mal_gap.py            # full Algorithm 1 (about a minute)
    python examples/mal_gap.py --fast     # primary question + witness only
"""

import sys

from repro.core import (
    CoverageOptions,
    find_coverage_gap,
    format_gap_analysis,
    is_covered_with,
    primary_coverage_check,
)
from repro.designs import build_mal_with_gap, expected_gap_property
from repro.ltl import implies, to_str
from repro.rtl import render_table


def main() -> None:
    fast = "--fast" in sys.argv
    problem = build_mal_with_gap()
    print(problem.summary())

    primary = primary_coverage_check(problem)
    print(f"primary coverage question: covered = {primary.covered} "
          f"({primary.elapsed_seconds:.2f} s)")
    if primary.witness is not None:
        print("witness run (RTL admits it, intent forbids it):")
        print(render_table(primary.witness.to_table(8),
                           ["r1", "r2", "hit", "n1", "n2", "g1", "g2", "wait", "d1", "d2"]))

    # The paper's gap property (adapted to this reproduction's timing) closes it.
    gap = expected_gap_property()
    print()
    print("reference gap property:", to_str(gap))
    print("  weaker than the intent:", implies(problem.architectural[0], gap))
    print("  closes the gap:        ", is_covered_with(problem, [gap]))

    if fast:
        return

    print()
    print("running Algorithm 1 (witnesses -> terms -> push -> weaken) ...")
    options = CoverageOptions(max_witnesses=2, max_closure_checks=10, max_reported_gaps=2)
    analysis = find_coverage_gap(problem, problem.architectural[0], options)
    print(format_gap_analysis(analysis))


if __name__ == "__main__":
    main()
