#!/usr/bin/env python3
"""Reproduce the paper's Figure 3 timing diagrams by simulation.

The closed Figure 2 design (arbiter RTL + masking glue + cache logic) is
simulated for the two scenarios of Figure 3:

* (a) the ``r1`` lookup hits: ``d1`` is asserted the cycle after the grant,
* (b) the ``r1`` lookup misses: ``wait`` rises, masks the ``r2`` grant, and
  ``d1`` is asserted when the refill arrives (``hit``).

Run with::

    python examples/mal_timing_diagram.py
"""

from repro.designs import build_full_mal_fig2, hit_scenario_stimulus, miss_scenario_stimulus
from repro.rtl import Stimulus, render_table, render_waveform, simulate

SIGNALS = ["r1", "r2", "n1", "n2", "g1", "g2", "hit", "wait", "d1", "d2"]


def main() -> None:
    design = build_full_mal_fig2()
    print(design.summary())
    print()
    for title, stimulus in (
        ("Figure 3(a): cache hit for r1", hit_scenario_stimulus()),
        ("Figure 3(b): cache miss for r1", miss_scenario_stimulus()),
    ):
        trace = simulate(design, Stimulus.from_vectors(**stimulus), cycles=6)
        print(title)
        print(render_waveform(trace, SIGNALS, ascii_only=True))
        print()
        print(render_table(trace, SIGNALS))
        print()


if __name__ == "__main__":
    main()
